//! Lock-free metric primitives and the global `&'static` registry.
//!
//! Metrics are append-only: once registered under a name they live for
//! the life of the process (they are `Box::leak`ed into `&'static`
//! references), so hot paths update a plain `AtomicU64` with no locking
//! or lookup. Lookup (registration) takes a mutex, but every
//! instrumentation site caches the returned `&'static` handle in a
//! `OnceLock`, so the mutex is touched once per site per process.
//!
//! Naming scheme: `mc.<crate>.<stage>.<name>`, e.g.
//! `mc.core.ssj.pairs_scored` (see DESIGN.md §Observability).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed value (thread counts, queue depths, ratios in
/// per-mille).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of buckets in every [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-bucket power-of-two histogram of `u64` observations.
///
/// Bucket `i` counts observations `v` with `floor(log2(v + 1)) == i`
/// (bucket 0 holds `v == 0`); the last bucket absorbs the tail. Records
/// are a single atomic increment plus two atomic adds — no floating
/// point, no locks.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0u64; HISTOGRAM_BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Bucket index of an observation.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        ((64 - v.saturating_add(1).leading_zeros() as usize) - 1).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation seen (0 if none).
    #[inline]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }
}

/// The set of metrics registered under names.
///
/// There is one global registry (see [`registry`]); tests may build
/// private ones.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

impl Registry {
    /// A new empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut map = self.counters.lock().unwrap();
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(Counter::default())))
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut map = self.gauges.lock().unwrap();
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(Gauge::default())))
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(Histogram::default())))
    }

    /// Snapshot of all counters as `(name, value)`.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), v.get()))
            .collect()
    }

    /// Snapshot of all gauges as `(name, value)`.
    pub fn gauge_values(&self) -> Vec<(String, i64)> {
        self.gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), v.get()))
            .collect()
    }

    /// Snapshot of all histograms as `(name, count, sum, max)`.
    pub fn histogram_values(&self) -> Vec<(String, u64, u64, u64)> {
        self.histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), v.count(), v.sum(), v.max()))
            .collect()
    }
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

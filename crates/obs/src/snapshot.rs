//! Point-in-time captures of the registry + flight recorder, with a
//! stable JSON encoding shared by the debugger, the `mc` CLI, and the
//! bench harness.
//!
//! The registry is cumulative for the life of the process, so callers
//! that want per-run numbers capture a snapshot before the run and call
//! [`MetricsSnapshot::since`] after it.

use crate::metrics::registry;
use crate::span::{flight_recorder, SpanRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated statistics of one span name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanStat {
    /// Completed instances.
    pub count: u64,
    /// Total duration, microseconds.
    pub total_us: u64,
    /// Largest single duration, microseconds.
    pub max_us: u64,
}

/// One flight-recorder record retained in a snapshot.
#[derive(Debug, Clone)]
pub struct SnapEvent {
    /// Record name.
    pub name: String,
    /// Caller label (`u64::MAX` = unlabeled).
    pub label: u64,
    /// Payload value (0 for spans).
    pub value: u64,
    /// Duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
    /// Recording thread tag.
    pub thread: u64,
    /// Global sequence number.
    pub seq: u64,
    /// Parent span's sequence number (`u64::MAX` = root).
    pub parent_seq: u64,
}

impl From<&SpanRecord> for SnapEvent {
    fn from(r: &SpanRecord) -> Self {
        SnapEvent {
            name: r.name.to_string(),
            label: r.label,
            value: r.value,
            dur_ns: r.dur_ns,
            thread: r.thread,
            seq: r.seq,
            parent_seq: r.parent_seq,
        }
    }
}

/// A capture of every registered metric plus the flight recorder.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram `(count, sum, max)` by name. Span durations appear here
    /// under the span's name, in microseconds.
    pub histograms: BTreeMap<String, (u64, u64, u64)>,
    /// Flight-recorder records retained at capture time.
    pub events: Vec<SnapEvent>,
    /// Flight-recorder sequence watermark at capture time.
    pub seq_watermark: u64,
}

impl MetricsSnapshot {
    /// Captures the current state of the global registry and recorder.
    pub fn capture() -> Self {
        let reg = registry();
        let rec = flight_recorder();
        MetricsSnapshot {
            counters: reg.counter_values().into_iter().collect(),
            gauges: reg.gauge_values().into_iter().collect(),
            histograms: reg
                .histogram_values()
                .into_iter()
                .map(|(n, c, s, m)| (n, (c, s, m)))
                .collect(),
            events: rec.drain_ordered().iter().map(SnapEvent::from).collect(),
            seq_watermark: rec.pushed(),
        }
    }

    /// The delta `self − baseline`: counters and histogram counts/sums
    /// subtract, gauges keep their current value, and only events after
    /// the baseline's watermark are retained. Both snapshots must come
    /// from the same process.
    pub fn since(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                (
                    k.clone(),
                    v - baseline.counters.get(k).copied().unwrap_or(0),
                )
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, &(c, s, m))| {
                let (bc, bs, _) = baseline.histograms.get(k).copied().unwrap_or((0, 0, 0));
                (k.clone(), (c - bc, s - bs, m))
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
            events: self
                .events
                .iter()
                .filter(|e| e.seq >= baseline.seq_watermark)
                .cloned()
                .collect(),
            seq_watermark: self.seq_watermark,
        }
    }

    /// A counter's value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value (0 if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Aggregated span statistics by name, derived from the duration
    /// histograms (complete — not limited by the ring buffer).
    pub fn span(&self, name: &str) -> SpanStat {
        self.histograms
            .get(name)
            .map(|&(count, total_us, max_us)| SpanStat {
                count,
                total_us,
                max_us,
            })
            .unwrap_or_default()
    }

    /// Retained events with the given name.
    pub fn events_named<'a>(&'a self, name: &str) -> Vec<&'a SnapEvent> {
        self.events.iter().filter(|e| e.name == name).collect()
    }

    /// Serializes to the stable `mc-obs/v1` JSON schema (see DESIGN.md).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"mc-obs/v1\",\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", escape(k), v);
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", escape(k), v);
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (k, (c, s, m)) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}}}",
                escape(k),
                c,
                s,
                m
            );
        }
        out.push_str("\n  },\n  \"events\": [");
        first = true;
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"label\": {}, \"value\": {}, \"dur_ns\": {}, \"thread\": {}, \"seq\": {}, \"parent_seq\": {}}}",
                escape(&e.name),
                json_u64(e.label),
                e.value,
                e.dur_ns,
                e.thread,
                e.seq,
                json_u64(e.parent_seq)
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders a human-readable stage breakdown: spans sorted by total
    /// time, then non-zero counters and gauges.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("── stage breakdown (spans) ─────────────────────────────────\n");
        let mut spans: Vec<(&String, &(u64, u64, u64))> = self.histograms.iter().collect();
        spans.sort_by_key(|&(_, &(_, total_us, _))| std::cmp::Reverse(total_us));
        for (name, &(count, total_us, max_us)) in spans {
            if count == 0 {
                continue;
            }
            let mean = total_us / count.max(1);
            let _ = writeln!(
                out,
                "{name:<44} n={count:<6} total={:<12} mean={:<10} max={}",
                fmt_us(total_us),
                fmt_us(mean),
                fmt_us(max_us)
            );
        }
        out.push_str("── counters ────────────────────────────────────────────────\n");
        for (name, v) in &self.counters {
            if *v != 0 {
                let _ = writeln!(out, "{name:<44} {v}");
            }
        }
        out.push_str("── gauges ──────────────────────────────────────────────────\n");
        for (name, v) in &self.gauges {
            if *v != 0 {
                let _ = writeln!(out, "{name:<44} {v}");
            }
        }
        out
    }
}

/// `u64::MAX` sentinels encode as -1 so the JSON stays integral.
fn json_u64(v: u64) -> i64 {
    if v == u64::MAX {
        -1
    } else {
        v as i64
    }
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::registry;
    use crate::span::Span;

    #[test]
    fn since_subtracts_counters() {
        let c = registry().counter("mc.test.snapshot.delta");
        c.add(5);
        let base = MetricsSnapshot::capture();
        c.add(7);
        let now = MetricsSnapshot::capture();
        let d = now.since(&base);
        assert_eq!(d.counter("mc.test.snapshot.delta"), 7);
    }

    #[test]
    fn json_contains_schema_and_values() {
        registry().counter("mc.test.snapshot.json").add(3);
        {
            let _s = Span::enter("mc.test.snapshot.span");
        }
        let snap = MetricsSnapshot::capture();
        let json = snap.to_json();
        assert!(json.contains("\"schema\": \"mc-obs/v1\""));
        assert!(json.contains("mc.test.snapshot.json"));
        assert!(json.contains("mc.test.snapshot.span"));
        // sanity: balanced braces
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn render_mentions_nonzero_metrics() {
        registry().counter("mc.test.snapshot.render").add(2);
        let snap = MetricsSnapshot::capture();
        assert!(snap.render().contains("mc.test.snapshot.render"));
    }

    #[test]
    fn span_stat_reads_histogram() {
        {
            let _s = Span::enter("mc.test.snapshot.stat");
        }
        let snap = MetricsSnapshot::capture();
        assert!(snap.span("mc.test.snapshot.stat").count >= 1);
        assert_eq!(snap.span("mc.test.snapshot.absent"), SpanStat::default());
    }
}

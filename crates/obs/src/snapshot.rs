//! Point-in-time captures of a registry + flight recorder, with a
//! stable JSON encoding shared by the debugger, the `mc` CLI, and the
//! bench harness.
//!
//! [`MetricsSnapshot::capture`] freezes the **current**
//! [`ObsContext`](crate::ObsContext) — the global one unless a session
//! context is attached, so pre-existing callers keep their process-wide
//! semantics while scoped callers get per-session numbers for free.
//! Registries are cumulative for the life of their context, so callers
//! that want per-run deltas capture before the run and call
//! [`MetricsSnapshot::since`] after it.
//!
//! The JSON schema is `mc-obs/v2`: histograms carry p50/p95/p99 and
//! their sparse non-zero bucket counts in addition to the v1
//! count/sum/max triple. [`MetricsSnapshot::from_json`] reads both v1
//! and v2 documents.

use crate::context::ObsContext;
use crate::json::JsonValue;
use crate::metrics::{quantile_from_buckets, HISTOGRAM_BUCKETS};
use crate::span::SpanRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated statistics of one span name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanStat {
    /// Completed instances.
    pub count: u64,
    /// Total duration, microseconds.
    pub total_us: u64,
    /// Largest single duration, microseconds.
    pub max_us: u64,
    /// Median duration, microseconds (0 when no instances).
    pub p50_us: u64,
    /// 95th-percentile duration, microseconds.
    pub p95_us: u64,
    /// 99th-percentile duration, microseconds.
    pub p99_us: u64,
}

/// Frozen state of one histogram: the v1 count/sum/max triple plus the
/// sparse non-zero buckets that make quantiles computable offline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnap {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// Sparse `(bucket index, count)` pairs, ascending by index (see
    /// [`crate::metrics::bucket_of`]). Empty for snapshots read from v1
    /// JSON, in which case quantiles degrade to 0.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnap {
    /// Nearest-rank quantile over the frozen buckets (`q ∈ [0, 1]`).
    /// Returns 0 when the snapshot has no bucket data (v1 documents).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.buckets.is_empty() {
            return 0;
        }
        let mut dense = vec![0u64; HISTOGRAM_BUCKETS];
        for &(i, c) in &self.buckets {
            if (i as usize) < HISTOGRAM_BUCKETS {
                dense[i as usize] = c;
            }
        }
        let bucket_total: u64 = dense.iter().sum();
        quantile_from_buckets(&dense, bucket_total, self.max, q)
    }
}

/// One flight-recorder record retained in a snapshot.
#[derive(Debug, Clone)]
pub struct SnapEvent {
    /// Record name.
    pub name: String,
    /// Caller label (`u64::MAX` = unlabeled).
    pub label: u64,
    /// Payload value (0 for spans).
    pub value: u64,
    /// Start time, nanoseconds since the recorder's creation.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
    /// Recording thread tag.
    pub thread: u64,
    /// Per-recorder sequence number.
    pub seq: u64,
    /// Parent span's sequence number (`u64::MAX` = root).
    pub parent_seq: u64,
}

impl From<&SpanRecord> for SnapEvent {
    fn from(r: &SpanRecord) -> Self {
        SnapEvent {
            name: r.name.to_string(),
            label: r.label,
            value: r.value,
            start_ns: r.start_ns,
            dur_ns: r.dur_ns,
            thread: r.thread,
            seq: r.seq,
            parent_seq: r.parent_seq,
        }
    }
}

/// A capture of every registered metric plus the flight recorder.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram state by name. Span durations appear here under the
    /// span's name, in microseconds.
    pub histograms: BTreeMap<String, HistogramSnap>,
    /// Flight-recorder records retained at capture time.
    pub events: Vec<SnapEvent>,
    /// Flight-recorder sequence watermark at capture time.
    pub seq_watermark: u64,
}

impl MetricsSnapshot {
    /// Captures the current context's registry and recorder (the global
    /// ones unless a session [`ObsContext`] is attached on this thread).
    pub fn capture() -> Self {
        MetricsSnapshot::capture_from(&ObsContext::current())
    }

    /// Captures `ctx`'s registry and recorder, whichever context is
    /// attached on the calling thread.
    pub fn capture_from(ctx: &ObsContext) -> Self {
        let reg = ctx.registry();
        let rec = ctx.recorder();
        let mut counters: BTreeMap<String, u64> = reg.counter_values().into_iter().collect();
        // Ring-buffer truncation is invisible in drain_ordered(); surface
        // it as a counter so silent overwrites show up in reports. It is
        // monotone, so `since` deltas work as for any counter.
        counters.insert("mc.obs.flight.dropped".to_string(), rec.dropped());
        MetricsSnapshot {
            counters,
            gauges: reg.gauge_values().into_iter().collect(),
            histograms: reg
                .histogram_values()
                .into_iter()
                .map(|(n, c, s, m, buckets)| {
                    (
                        n,
                        HistogramSnap {
                            count: c,
                            sum: s,
                            max: m,
                            buckets: sparsify(&buckets),
                        },
                    )
                })
                .collect(),
            events: rec.drain_ordered().iter().map(SnapEvent::from).collect(),
            seq_watermark: rec.pushed(),
        }
    }

    /// The delta `self − baseline`: counters and histogram
    /// counts/sums/buckets subtract (keys missing from the baseline are
    /// treated as 0), gauges keep their current value, and only events
    /// after the baseline's watermark are retained. Both snapshots must
    /// come from the same context.
    pub fn since(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                (
                    k.clone(),
                    v.saturating_sub(baseline.counters.get(k).copied().unwrap_or(0)),
                )
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let base = baseline.histograms.get(k);
                let (bc, bs) = base.map(|b| (b.count, b.sum)).unwrap_or((0, 0));
                (
                    k.clone(),
                    HistogramSnap {
                        count: h.count.saturating_sub(bc),
                        sum: h.sum.saturating_sub(bs),
                        max: h.max,
                        buckets: subtract_sparse(
                            &h.buckets,
                            base.map(|b| b.buckets.as_slice()).unwrap_or(&[]),
                        ),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
            events: self
                .events
                .iter()
                .filter(|e| e.seq >= baseline.seq_watermark)
                .cloned()
                .collect(),
            seq_watermark: self.seq_watermark,
        }
    }

    /// A counter's value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value (0 if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A histogram's frozen state (all-zero if absent).
    pub fn histogram(&self, name: &str) -> HistogramSnap {
        self.histograms.get(name).cloned().unwrap_or_default()
    }

    /// Aggregated span statistics by name, derived from the duration
    /// histograms (complete — not limited by the ring buffer), including
    /// p50/p95/p99 from the log-linear buckets.
    pub fn span(&self, name: &str) -> SpanStat {
        self.histograms
            .get(name)
            .map(|h| SpanStat {
                count: h.count,
                total_us: h.sum,
                max_us: h.max,
                p50_us: h.quantile(0.50),
                p95_us: h.quantile(0.95),
                p99_us: h.quantile(0.99),
            })
            .unwrap_or_default()
    }

    /// Retained events with the given name.
    pub fn events_named<'a>(&'a self, name: &str) -> Vec<&'a SnapEvent> {
        self.events.iter().filter(|e| e.name == name).collect()
    }

    /// Serializes to the stable `mc-obs/v2` JSON schema (see DESIGN.md):
    /// v1 plus per-histogram `p50`/`p95`/`p99` and sparse `buckets`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"mc-obs/v2\",\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", escape(k), v);
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", escape(k), v);
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
                escape(k),
                h.count,
                h.sum,
                h.max,
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
            );
            let mut bfirst = true;
            for &(i, c) in &h.buckets {
                if !bfirst {
                    out.push_str(", ");
                }
                bfirst = false;
                let _ = write!(out, "[{i}, {c}]");
            }
            out.push_str("]}");
        }
        let _ = write!(
            out,
            "\n  }},\n  \"seq_watermark\": {},\n  \"events\": [",
            self.seq_watermark
        );
        first = true;
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"label\": {}, \"value\": {}, \"start_ns\": {}, \"dur_ns\": {}, \"thread\": {}, \"seq\": {}, \"parent_seq\": {}}}",
                escape(&e.name),
                json_u64(e.label),
                e.value,
                e.start_ns,
                e.dur_ns,
                e.thread,
                e.seq,
                json_u64(e.parent_seq)
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Reads an `mc-obs/v1` or `mc-obs/v2` JSON document produced by
    /// [`MetricsSnapshot::to_json`]. v1 documents have no bucket data,
    /// so quantiles computed from them are 0.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, String> {
        let doc = JsonValue::parse(text)?;
        let schema = doc.get("schema").and_then(JsonValue::as_str).unwrap_or("");
        if schema != "mc-obs/v1" && schema != "mc-obs/v2" {
            return Err(format!("unsupported snapshot schema {schema:?}"));
        }
        let mut snap = MetricsSnapshot::default();
        if let Some(obj) = doc.get("counters").and_then(JsonValue::as_object) {
            for (k, v) in obj {
                snap.counters
                    .insert(k.clone(), v.as_u64().ok_or("non-integer counter")?);
            }
        }
        if let Some(obj) = doc.get("gauges").and_then(JsonValue::as_object) {
            for (k, v) in obj {
                snap.gauges
                    .insert(k.clone(), v.as_i64().ok_or("non-integer gauge")?);
            }
        }
        if let Some(obj) = doc.get("histograms").and_then(JsonValue::as_object) {
            for (k, v) in obj {
                let mut h = HistogramSnap {
                    count: v.get("count").and_then(JsonValue::as_u64).unwrap_or(0),
                    sum: v.get("sum").and_then(JsonValue::as_u64).unwrap_or(0),
                    max: v.get("max").and_then(JsonValue::as_u64).unwrap_or(0),
                    buckets: Vec::new(),
                };
                if let Some(pairs) = v.get("buckets").and_then(JsonValue::as_array) {
                    for pair in pairs {
                        let p = pair.as_array().ok_or("bucket entry is not a pair")?;
                        if p.len() != 2 {
                            return Err("bucket entry is not a pair".into());
                        }
                        h.buckets.push((
                            p[0].as_u64().ok_or("non-integer bucket index")? as u32,
                            p[1].as_u64().ok_or("non-integer bucket count")?,
                        ));
                    }
                }
                snap.histograms.insert(k.clone(), h);
            }
        }
        snap.seq_watermark = doc
            .get("seq_watermark")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        if let Some(events) = doc.get("events").and_then(JsonValue::as_array) {
            for e in events {
                snap.events.push(SnapEvent {
                    name: e
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .ok_or("event without name")?
                        .to_string(),
                    label: sentinel_u64(e.get("label")),
                    value: e.get("value").and_then(JsonValue::as_u64).unwrap_or(0),
                    start_ns: e.get("start_ns").and_then(JsonValue::as_u64).unwrap_or(0),
                    dur_ns: e.get("dur_ns").and_then(JsonValue::as_u64).unwrap_or(0),
                    thread: e.get("thread").and_then(JsonValue::as_u64).unwrap_or(0),
                    seq: e.get("seq").and_then(JsonValue::as_u64).unwrap_or(0),
                    parent_seq: sentinel_u64(e.get("parent_seq")),
                });
            }
        }
        Ok(snap)
    }

    /// Renders a human-readable stage breakdown: spans sorted by total
    /// time (with p50/p99), then non-zero counters and gauges.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("── stage breakdown (spans) ─────────────────────────────────\n");
        let mut spans: Vec<(&String, &HistogramSnap)> = self.histograms.iter().collect();
        spans.sort_by_key(|&(_, h)| std::cmp::Reverse(h.sum));
        for (name, h) in spans {
            if h.count == 0 {
                continue;
            }
            let mean = h.sum / h.count.max(1);
            let _ = writeln!(
                out,
                "{name:<44} n={:<6} total={:<12} mean={:<10} p50={:<10} p99={:<10} max={}",
                h.count,
                fmt_us(h.sum),
                fmt_us(mean),
                fmt_us(h.quantile(0.50)),
                fmt_us(h.quantile(0.99)),
                fmt_us(h.max)
            );
        }
        out.push_str("── counters ────────────────────────────────────────────────\n");
        for (name, v) in &self.counters {
            if *v != 0 {
                let _ = writeln!(out, "{name:<44} {v}");
            }
        }
        out.push_str("── gauges ──────────────────────────────────────────────────\n");
        for (name, v) in &self.gauges {
            if *v != 0 {
                let _ = writeln!(out, "{name:<44} {v}");
            }
        }
        out
    }
}

/// Dense per-bucket counts → sparse ascending `(index, count)` pairs.
fn sparsify(dense: &[u64]) -> Vec<(u32, u64)> {
    dense
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(i, &c)| (i as u32, c))
        .collect()
}

/// Sparse bucket subtraction: `a − b`, dropping empty buckets.
fn subtract_sparse(a: &[(u32, u64)], b: &[(u32, u64)]) -> Vec<(u32, u64)> {
    let base: BTreeMap<u32, u64> = b.iter().copied().collect();
    a.iter()
        .filter_map(|&(i, c)| {
            let rem = c.saturating_sub(base.get(&i).copied().unwrap_or(0));
            (rem > 0).then_some((i, rem))
        })
        .collect()
}

/// `u64::MAX` sentinels encode as -1 so the JSON stays integral.
fn json_u64(v: u64) -> i64 {
    if v == u64::MAX {
        -1
    } else {
        v as i64
    }
}

/// Decodes a `-1`-sentinel integer back to `u64::MAX`.
fn sentinel_u64(v: Option<&JsonValue>) -> u64 {
    match v.and_then(JsonValue::as_i64) {
        Some(-1) | None => u64::MAX,
        Some(n) if n >= 0 => n as u64,
        Some(_) => u64::MAX,
    }
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

pub(crate) use crate::json::escape;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::registry;
    use crate::span::Span;

    #[test]
    fn since_subtracts_counters() {
        let c = registry().counter("mc.test.snapshot.delta");
        c.add(5);
        let base = MetricsSnapshot::capture();
        c.add(7);
        let now = MetricsSnapshot::capture();
        let d = now.since(&base);
        assert_eq!(d.counter("mc.test.snapshot.delta"), 7);
    }

    #[test]
    fn since_handles_baseline_missing_keys() {
        // A session context guarantees the baseline genuinely lacks the
        // keys (the global registry may already have them from other
        // tests).
        let ctx = ObsContext::session();
        let base = ctx.snapshot();
        assert!(!base.counters.contains_key("mc.test.snapshot.fresh"));
        {
            let _g = ctx.attach();
            crate::counter!("mc.test.snapshot.fresh").add(9);
            crate::histogram!("mc.test.snapshot.fresh_hist").record(42);
        }
        let d = ctx.snapshot().since(&base);
        assert_eq!(d.counter("mc.test.snapshot.fresh"), 9);
        let h = d.histogram("mc.test.snapshot.fresh_hist");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 42);
        // A single observation: every quantile is the max, tracked
        // exactly even above the exact-bucket range.
        assert_eq!(h.quantile(0.5), 42);
        assert_eq!(h.quantile(1.0), 42);
    }

    #[test]
    fn json_contains_schema_and_values() {
        registry().counter("mc.test.snapshot.json").add(3);
        {
            let _s = Span::enter("mc.test.snapshot.span");
        }
        let snap = MetricsSnapshot::capture();
        let json = snap.to_json();
        assert!(json.contains("\"schema\": \"mc-obs/v2\""));
        assert!(json.contains("mc.test.snapshot.json"));
        assert!(json.contains("mc.test.snapshot.span"));
        assert!(json.contains("\"p99\""));
        // sanity: balanced braces
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_round_trips_without_loss() {
        let ctx = ObsContext::session();
        {
            let _g = ctx.attach();
            crate::counter!("mc.test.snapshot.rt").add(11);
            crate::gauge!("mc.test.snapshot.rt_gauge").set(-4);
            for v in [3u64, 300, 30_000] {
                crate::histogram!("mc.test.snapshot.rt_hist").record(v);
            }
            crate::event("mc.test.snapshot.rt_event", 5, 77);
        }
        let snap = ctx.snapshot();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back.counter("mc.test.snapshot.rt"), 11);
        assert_eq!(back.gauge("mc.test.snapshot.rt_gauge"), -4);
        let h = back.histogram("mc.test.snapshot.rt_hist");
        assert_eq!((h.count, h.sum, h.max), (3, 30_303, 30_000));
        assert_eq!(
            h.buckets,
            snap.histogram("mc.test.snapshot.rt_hist").buckets
        );
        assert_eq!(
            h.quantile(0.5),
            snap.histogram("mc.test.snapshot.rt_hist").quantile(0.5)
        );
        let ev = &back.events_named("mc.test.snapshot.rt_event")[0];
        assert_eq!((ev.label, ev.value), (5, 77));
        assert_eq!(ev.parent_seq, u64::MAX);
    }

    #[test]
    fn json_escapes_hostile_names_round_trip() {
        // Metric names are &'static str; hostile ones must survive
        // to_json → from_json byte-for-byte.
        let hostile: &'static str = "mc.test.\"quoted\"\\back\nslash\u{1}ctl";
        let ctx = ObsContext::session();
        ctx.registry().counter(hostile).add(1);
        ctx.registry().histogram(hostile).record(2);
        let json = ctx.snapshot().to_json();
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\\\\back"));
        assert!(json.contains("\\n"));
        assert!(json.contains("\\u0001"));
        let back = MetricsSnapshot::from_json(&json).unwrap();
        assert_eq!(back.counter(hostile), 1);
        assert_eq!(back.histogram(hostile).count, 1);
    }

    #[test]
    fn v1_documents_still_parse() {
        let v1 = r#"{
  "schema": "mc-obs/v1",
  "counters": {
    "mc.core.ssj.scored": 1529
  },
  "gauges": {
    "mc.core.joint.workers": 4
  },
  "histograms": {
    "mc.core.joint.run": {"count": 2, "sum": 1200, "max": 900}
  },
  "events": [
    {"name": "mc.core.verify.iteration", "label": 0, "value": 10, "dur_ns": 0, "thread": 1, "seq": 3, "parent_seq": -1}
  ]
}"#;
        let snap = MetricsSnapshot::from_json(v1).unwrap();
        assert_eq!(snap.counter("mc.core.ssj.scored"), 1529);
        assert_eq!(snap.gauge("mc.core.joint.workers"), 4);
        let h = snap.histogram("mc.core.joint.run");
        assert_eq!((h.count, h.sum, h.max), (2, 1200, 900));
        assert_eq!(
            h.quantile(0.5),
            0,
            "v1 has no buckets: quantiles degrade to 0"
        );
        assert_eq!(snap.events[0].parent_seq, u64::MAX);
        assert!(MetricsSnapshot::from_json("{\"schema\": \"mc-obs/v9\"}").is_err());
    }

    #[test]
    fn render_mentions_nonzero_metrics() {
        registry().counter("mc.test.snapshot.render").add(2);
        let snap = MetricsSnapshot::capture();
        assert!(snap.render().contains("mc.test.snapshot.render"));
    }

    #[test]
    fn span_stat_reads_histogram() {
        {
            let _s = Span::enter("mc.test.snapshot.stat");
        }
        let snap = MetricsSnapshot::capture();
        let stat = snap.span("mc.test.snapshot.stat");
        assert!(stat.count >= 1);
        assert!(stat.p50_us <= stat.p95_us && stat.p95_us <= stat.p99_us);
        assert!(stat.p99_us <= stat.max_us.max(1));
        assert_eq!(snap.span("mc.test.snapshot.absent"), SpanStat::default());
    }

    #[test]
    fn flight_dropped_surfaces_in_snapshot() {
        let ctx = ObsContext::with_recorder_capacity(4);
        {
            let _g = ctx.attach();
            for i in 0..10 {
                crate::event("mc.test.snapshot.drop", i, 0);
            }
        }
        let snap = ctx.snapshot();
        assert_eq!(snap.counter("mc.obs.flight.dropped"), 6);
        assert!(snap.to_json().contains("mc.obs.flight.dropped"));
    }
}

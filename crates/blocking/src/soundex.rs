//! American Soundex — the classic phonetic key (§2 mentions phonetic
//! blockers alongside hash and sorted-neighborhood).
//!
//! The code is the first letter followed by three digits encoding the
//! remaining consonants; vowels and `h/w/y` are skipped, doubled codes
//! collapse, and `h`/`w` do not separate equal codes.

/// Soundex code of `s` (e.g. `"robert"` → `"r163"`). Returns `None` when
/// the input contains no ASCII letter.
pub fn soundex(s: &str) -> Option<String> {
    let mut chars = s.chars().filter_map(|c| {
        let c = c.to_ascii_lowercase();
        c.is_ascii_lowercase().then_some(c)
    });
    let first = chars.next()?;
    let mut code = String::with_capacity(4);
    code.push(first);
    let mut last_digit = digit(first);
    for c in chars {
        let d = digit(c);
        match d {
            0 => {
                // vowels reset the adjacency rule; h/w/y do not
                if matches!(c, 'a' | 'e' | 'i' | 'o' | 'u') {
                    last_digit = 0;
                }
            }
            d if d != last_digit => {
                code.push((b'0' + d) as char);
                last_digit = d;
                if code.len() == 4 {
                    break;
                }
            }
            _ => {}
        }
    }
    while code.len() < 4 {
        code.push('0');
    }
    Some(code)
}

fn digit(c: char) -> u8 {
    match c {
        'b' | 'f' | 'p' | 'v' => 1,
        'c' | 'g' | 'j' | 'k' | 'q' | 's' | 'x' | 'z' => 2,
        'd' | 't' => 3,
        'l' => 4,
        'm' | 'n' => 5,
        'r' => 6,
        _ => 0, // vowels, h, w, y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_examples() {
        assert_eq!(soundex("Robert").as_deref(), Some("r163"));
        assert_eq!(soundex("Rupert").as_deref(), Some("r163"));
        assert_eq!(soundex("Ashcraft").as_deref(), Some("a261"));
        assert_eq!(soundex("Tymczak").as_deref(), Some("t522"));
        assert_eq!(soundex("Pfister").as_deref(), Some("p236"));
        assert_eq!(soundex("Honeyman").as_deref(), Some("h555"));
    }

    #[test]
    fn similar_names_collide() {
        assert_eq!(soundex("welson"), soundex("wilson"));
        assert_eq!(soundex("smith"), soundex("smyth"));
    }

    #[test]
    fn empty_or_nonalpha_is_none() {
        assert_eq!(soundex(""), None);
        assert_eq!(soundex("123"), None);
        assert_eq!(soundex("  !"), None);
    }

    #[test]
    fn short_names_pad_with_zeros() {
        assert_eq!(soundex("lee").as_deref(), Some("l000"));
        assert_eq!(soundex("a").as_deref(), Some("a000"));
    }
}

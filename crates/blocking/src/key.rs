//! Blocking key functions.
//!
//! Hash blocking "outputs a pair of tuples if they share the same hash
//! value, using a pre-specified hash function" (§2). A [`KeyFunc`] is that
//! hash function: it maps a tuple to an optional string key (missing
//! values yield no key, so the tuple lands in no block). Attribute
//! equivalence is the special case [`KeyFunc::Attr`], and the paper's
//! running example uses [`KeyFunc::LastWord`]
//! (`lastword(a.Name) = lastword(b.Name)`).

use crate::soundex::soundex;
use mc_strsim::tokenize::{first_word, last_word};
use mc_table::{AttrId, Schema, Table, TupleId};

/// A function from a tuple to an optional blocking key.
#[derive(Debug, Clone, PartialEq)]
pub enum KeyFunc {
    /// The whole attribute value, lowercased and whitespace-normalized.
    Attr(AttrId),
    /// The last word of the attribute value (typically a surname).
    LastWord(AttrId),
    /// The first word of the attribute value (typically a brand or first
    /// name).
    FirstWord(AttrId),
    /// The first `n` characters of the normalized value.
    Prefix(AttrId, usize),
    /// Soundex code of the first word (phonetic blocking).
    Soundex(AttrId),
    /// Soundex code of the last word.
    SoundexLast(AttrId),
    /// Numeric value bucketed to `floor(v / width)` — a hash of a price or
    /// year.
    NumBucket(AttrId, f64),
}

impl KeyFunc {
    /// Computes the key for tuple `id` of `table`.
    pub fn key(&self, table: &Table, id: TupleId) -> Option<String> {
        match self {
            KeyFunc::Attr(a) => table.value(id, *a).map(normalize),
            KeyFunc::LastWord(a) => table.value(id, *a).and_then(last_word),
            KeyFunc::FirstWord(a) => table.value(id, *a).and_then(first_word),
            KeyFunc::Prefix(a, n) => table.value(id, *a).map(|v| {
                let norm = normalize(v);
                norm.chars().take(*n).collect()
            }),
            KeyFunc::Soundex(a) => table
                .value(id, *a)
                .and_then(first_word)
                .and_then(|w| soundex(&w)),
            KeyFunc::SoundexLast(a) => table
                .value(id, *a)
                .and_then(last_word)
                .and_then(|w| soundex(&w)),
            KeyFunc::NumBucket(a, width) => {
                let v: f64 = table.value(id, *a)?.trim().parse().ok()?;
                Some(format!("{}", (v / width).floor() as i64))
            }
        }
    }

    /// The attribute this key reads.
    pub fn attr(&self) -> AttrId {
        match self {
            KeyFunc::Attr(a)
            | KeyFunc::LastWord(a)
            | KeyFunc::FirstWord(a)
            | KeyFunc::Prefix(a, _)
            | KeyFunc::Soundex(a)
            | KeyFunc::SoundexLast(a)
            | KeyFunc::NumBucket(a, _) => *a,
        }
    }

    /// A readable description like `lastword(name)`.
    pub fn describe(&self, schema: &Schema) -> String {
        match self {
            KeyFunc::Attr(a) => schema.name(*a).to_string(),
            KeyFunc::LastWord(a) => format!("lastword({})", schema.name(*a)),
            KeyFunc::FirstWord(a) => format!("firstword({})", schema.name(*a)),
            KeyFunc::Prefix(a, n) => format!("prefix{}({})", n, schema.name(*a)),
            KeyFunc::Soundex(a) => format!("soundex({})", schema.name(*a)),
            KeyFunc::SoundexLast(a) => format!("soundexlast({})", schema.name(*a)),
            KeyFunc::NumBucket(a, w) => format!("bucket{}({})", w, schema.name(*a)),
        }
    }
}

/// Lowercases and collapses whitespace.
fn normalize(v: &str) -> String {
    v.split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
        .to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_table::{Schema, Tuple};
    use std::sync::Arc;

    fn table() -> Table {
        let schema = Arc::new(Schema::from_names(["name", "city", "price"]));
        let mut t = Table::new("A", schema);
        t.push(Tuple::from_present(["Dave  Smith", "New York", "129.99"]));
        t.push(Tuple::new(vec![
            None,
            Some("LA".into()),
            Some("n/a".into()),
        ]));
        t
    }

    #[test]
    fn attr_key_normalizes() {
        let t = table();
        let k = KeyFunc::Attr(AttrId(0));
        assert_eq!(k.key(&t, 0).as_deref(), Some("dave smith"));
        assert_eq!(k.key(&t, 1), None);
    }

    #[test]
    fn word_keys() {
        let t = table();
        assert_eq!(
            KeyFunc::LastWord(AttrId(0)).key(&t, 0).as_deref(),
            Some("smith")
        );
        assert_eq!(
            KeyFunc::FirstWord(AttrId(0)).key(&t, 0).as_deref(),
            Some("dave")
        );
    }

    #[test]
    fn prefix_key() {
        let t = table();
        assert_eq!(
            KeyFunc::Prefix(AttrId(1), 3).key(&t, 0).as_deref(),
            Some("new")
        );
    }

    #[test]
    fn soundex_keys() {
        let t = table();
        assert_eq!(
            KeyFunc::Soundex(AttrId(0)).key(&t, 0).as_deref(),
            Some("d100")
        );
        assert_eq!(
            KeyFunc::SoundexLast(AttrId(0)).key(&t, 0).as_deref(),
            Some("s530")
        );
    }

    #[test]
    fn num_bucket_parses_or_none() {
        let t = table();
        assert_eq!(
            KeyFunc::NumBucket(AttrId(2), 50.0).key(&t, 0).as_deref(),
            Some("2")
        );
        assert_eq!(KeyFunc::NumBucket(AttrId(2), 50.0).key(&t, 1), None);
    }

    #[test]
    fn describe_is_readable() {
        let t = table();
        let s = t.schema();
        assert_eq!(KeyFunc::LastWord(AttrId(0)).describe(s), "lastword(name)");
        assert_eq!(
            KeyFunc::NumBucket(AttrId(2), 20.0).describe(s),
            "bucket20(price)"
        );
    }
}

//! Blocker construction and execution.
//!
//! A [`Blocker`] is a **keep predicate** over tuple pairs, with an
//! efficient set-at-a-time executor ([`Blocker::apply`]) per §2's
//! "Efficient Execution of Blockers": hash blockers partition on keys,
//! SIM blockers run prefix-filter joins, edit-distance blockers use
//! q-gram count filtering, and rule blockers combine sub-blockers
//! (disjunction = union of outputs, conjunction = generate with the first
//! conjunct and filter with the rest).

use crate::canopy::{canopy_block, CanopyParams};
use crate::key::KeyFunc;
use mc_strsim::measures::{within_edit_distance, SetMeasure};
use mc_strsim::tokenize::{qgram_tokens, Tokenizer};
use mc_strsim::{dict::TokenizedTable, join};
use mc_table::hash::{fx_map, FxHashMap};
use mc_table::{AttrId, PairSet, Schema, Table, TupleId};

/// An executable blocker.
#[derive(Debug, Clone)]
pub enum Blocker {
    /// Keep pairs sharing a blocking key (hash / attribute-equivalence
    /// blocking).
    Hash(KeyFunc),
    /// Keep pairs whose keys are within `window` positions of each other
    /// in the sorted key order (sorted-neighborhood blocking).
    SortedNeighborhood {
        /// Key function.
        key: KeyFunc,
        /// Window size in sort positions (≥ 1).
        window: usize,
    },
    /// Keep pairs whose attribute values share at least `min_common`
    /// tokens (overlap blocking).
    Overlap {
        /// Attribute to compare.
        attr: AttrId,
        /// Tokenizer for the attribute.
        tokenizer: Tokenizer,
        /// Minimum shared tokens.
        min_common: usize,
    },
    /// Keep pairs with `measure(attr_a, attr_b) ≥ threshold` (SIM
    /// blocking).
    Sim {
        /// Attribute to compare.
        attr: AttrId,
        /// Tokenizer for the attribute.
        tokenizer: Tokenizer,
        /// Set-based measure.
        measure: SetMeasure,
        /// Keep threshold.
        threshold: f64,
    },
    /// Keep pairs whose *keys* are within edit distance `max_ed`
    /// (e.g. `ed(lastword(a.Name), lastword(b.Name)) ≤ 2`).
    EditSim {
        /// Key function producing the compared strings.
        key: KeyFunc,
        /// Maximum edit distance.
        max_ed: usize,
    },
    /// Keep pairs whose numeric values differ by at most `width`
    /// (`price_absdiff ≤ 20`).
    NumBand {
        /// Numeric attribute.
        attr: AttrId,
        /// Maximum absolute difference.
        width: f64,
    },
    /// Keep pairs whose canopy-clustering canopies intersect (§2's
    /// canopy blocking). Set-at-a-time only: membership depends on
    /// center selection, so there is no pairwise form.
    Canopy {
        /// Attribute driving the cheap similarity.
        attr: AttrId,
        /// Tokenizer for the attribute.
        tokenizer: Tokenizer,
        /// Loose (join-canopy) Jaccard threshold.
        loose: f64,
        /// Tight (remove-from-centers) threshold, ≥ `loose`.
        tight: f64,
    },
    /// Keep pairs whose keys share a suffix of at least `suffix_len`
    /// characters (suffix blocking; equivalent to hashing the last
    /// `suffix_len` characters of the key).
    SuffixKey {
        /// Key function producing the suffixed strings.
        key: KeyFunc,
        /// Minimum shared suffix length.
        suffix_len: usize,
    },
    /// Keep pairs kept by **any** sub-blocker (rule disjunction).
    Union(Vec<Blocker>),
    /// Keep pairs kept by **all** sub-blockers (rule conjunction). The
    /// first sub-blocker generates candidates; it must not be a
    /// sorted-neighborhood blocker in a non-leading position (its
    /// pairwise form is undefined).
    Intersect(Vec<Blocker>),
}

impl Blocker {
    /// Applies the blocker to two tables, producing the candidate set `C`.
    ///
    /// Each application runs inside a per-kind span
    /// (`mc.blocking.apply.<kind>`; rule blockers' sub-blockers nest) and
    /// bumps the `mc.blocking.applies` / `mc.blocking.pairs_kept`
    /// counters (nested sub-blockers count at each level).
    pub fn apply(&self, a: &Table, b: &Table) -> PairSet {
        let _span = mc_obs::Span::enter(self.span_name());
        let out = self.apply_inner(a, b);
        mc_obs::counter!("mc.blocking.applies").inc();
        mc_obs::counter!("mc.blocking.pairs_kept").add(out.len() as u64);
        out
    }

    /// The span name [`Blocker::apply`] records under.
    fn span_name(&self) -> &'static str {
        match self {
            Blocker::Hash(_) => "mc.blocking.apply.hash",
            Blocker::SortedNeighborhood { .. } => "mc.blocking.apply.sorted_neighborhood",
            Blocker::Overlap { .. } => "mc.blocking.apply.overlap",
            Blocker::Sim { .. } => "mc.blocking.apply.sim",
            Blocker::EditSim { .. } => "mc.blocking.apply.edit_sim",
            Blocker::NumBand { .. } => "mc.blocking.apply.num_band",
            Blocker::Canopy { .. } => "mc.blocking.apply.canopy",
            Blocker::SuffixKey { .. } => "mc.blocking.apply.suffix_key",
            Blocker::Union(_) => "mc.blocking.apply.union",
            Blocker::Intersect(_) => "mc.blocking.apply.intersect",
        }
    }

    fn apply_inner(&self, a: &Table, b: &Table) -> PairSet {
        match self {
            Blocker::Hash(key) => hash_join(a, b, key),
            Blocker::SortedNeighborhood { key, window } => sorted_neighborhood(a, b, key, *window),
            Blocker::Overlap {
                attr,
                tokenizer,
                min_common,
            } => {
                let (ta, tb, _) = TokenizedTable::build_pair(a, b, &[*attr], *tokenizer);
                let ra: Vec<Vec<u32>> = (0..ta.rows())
                    .map(|i| ta.ranks(0, i as u32).to_vec())
                    .collect();
                let rb: Vec<Vec<u32>> = (0..tb.rows())
                    .map(|i| tb.ranks(0, i as u32).to_vec())
                    .collect();
                join::overlap_join(&ra, &rb, *min_common)
            }
            Blocker::Sim {
                attr,
                tokenizer,
                measure,
                threshold,
            } => {
                let (ta, tb, _) = TokenizedTable::build_pair(a, b, &[*attr], *tokenizer);
                let ra: Vec<Vec<u32>> = (0..ta.rows())
                    .map(|i| ta.ranks(0, i as u32).to_vec())
                    .collect();
                let rb: Vec<Vec<u32>> = (0..tb.rows())
                    .map(|i| tb.ranks(0, i as u32).to_vec())
                    .collect();
                join::sim_join(&ra, &rb, *measure, *threshold)
            }
            Blocker::EditSim { key, max_ed } => edit_join(a, b, key, *max_ed),
            Blocker::NumBand { attr, width } => num_band(a, b, *attr, *width),
            Blocker::Canopy {
                attr,
                tokenizer,
                loose,
                tight,
            } => canopy_block(
                a,
                b,
                CanopyParams {
                    attr: *attr,
                    tokenizer: *tokenizer,
                    loose: *loose,
                    tight: *tight,
                },
            ),
            Blocker::SuffixKey { key, suffix_len } => suffix_join(a, b, key, *suffix_len),
            Blocker::Union(parts) => {
                let mut out = PairSet::new();
                for p in parts {
                    out.union_with(&p.apply(a, b));
                }
                out
            }
            Blocker::Intersect(parts) => {
                assert!(!parts.is_empty(), "empty conjunction");
                let mut out = parts[0].apply(a, b);
                if parts.len() > 1 {
                    let keys: Vec<(TupleId, TupleId)> = out.iter().collect();
                    for (ai, bi) in keys {
                        if !parts[1..].iter().all(|p| p.keeps(a, b, ai, bi)) {
                            out.remove(ai, bi);
                        }
                    }
                }
                out
            }
        }
    }

    /// Pairwise form of the keep predicate (used to filter conjunctions
    /// and by tests). Panics for sorted-neighborhood blockers, whose
    /// semantics are inherently set-at-a-time.
    pub fn keeps(&self, a: &Table, b: &Table, ai: TupleId, bi: TupleId) -> bool {
        match self {
            Blocker::Hash(key) => match (key.key(a, ai), key.key(b, bi)) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
            Blocker::SortedNeighborhood { .. } => {
                panic!("sorted-neighborhood blockers have no pairwise form")
            }
            Blocker::Overlap {
                attr,
                tokenizer,
                min_common,
            } => {
                let ta = tokenizer.tokens(a.value(ai, *attr).unwrap_or(""));
                let tb = tokenizer.tokens(b.value(bi, *attr).unwrap_or(""));
                shared_tokens(&ta, &tb) >= *min_common
            }
            Blocker::Sim {
                attr,
                tokenizer,
                measure,
                threshold,
            } => {
                let ta = tokenizer.tokens(a.value(ai, *attr).unwrap_or(""));
                let tb = tokenizer.tokens(b.value(bi, *attr).unwrap_or(""));
                if ta.is_empty() || tb.is_empty() {
                    return false;
                }
                let o = shared_tokens(&ta, &tb);
                measure.from_overlap(o, ta.len(), tb.len()) >= *threshold - 1e-12
            }
            Blocker::EditSim { key, max_ed } => match (key.key(a, ai), key.key(b, bi)) {
                (Some(x), Some(y)) => within_edit_distance(&x, &y, *max_ed),
                _ => false,
            },
            Blocker::NumBand { attr, width } => {
                let va: Option<f64> = a.value(ai, *attr).and_then(|v| v.trim().parse().ok());
                let vb: Option<f64> = b.value(bi, *attr).and_then(|v| v.trim().parse().ok());
                match (va, vb) {
                    (Some(x), Some(y)) => (x - y).abs() <= *width + 1e-9,
                    _ => false,
                }
            }
            Blocker::Canopy { .. } => {
                panic!("canopy blockers have no pairwise form")
            }
            Blocker::SuffixKey { key, suffix_len } => match (key.key(a, ai), key.key(b, bi)) {
                (Some(x), Some(y)) => {
                    match (suffix_of(&x, *suffix_len), suffix_of(&y, *suffix_len)) {
                        (Some(sx), Some(sy)) => sx == sy,
                        _ => false,
                    }
                }
                _ => false,
            },
            Blocker::Union(parts) => parts.iter().any(|p| p.keeps(a, b, ai, bi)),
            Blocker::Intersect(parts) => parts.iter().all(|p| p.keeps(a, b, ai, bi)),
        }
    }

    /// Readable description, e.g.
    /// `hash(lastword(name)) OR jac_word(title) >= 0.4`.
    pub fn describe(&self, schema: &Schema) -> String {
        match self {
            Blocker::Hash(k) => format!("hash({})", k.describe(schema)),
            Blocker::SortedNeighborhood { key, window } => {
                format!("sn({}, w={})", key.describe(schema), window)
            }
            Blocker::Overlap {
                attr,
                tokenizer,
                min_common,
            } => format!(
                "overlap_{}({}) >= {}",
                tokenizer.label(),
                schema.name(*attr),
                min_common
            ),
            Blocker::Sim {
                attr,
                tokenizer,
                measure,
                threshold,
            } => format!(
                "{}_{}({}) >= {}",
                measure.label(),
                tokenizer.label(),
                schema.name(*attr),
                threshold
            ),
            Blocker::EditSim { key, max_ed } => {
                format!("ed({}) <= {}", key.describe(schema), max_ed)
            }
            Blocker::NumBand { attr, width } => {
                format!("absdiff({}) <= {}", schema.name(*attr), width)
            }
            Blocker::Canopy {
                attr,
                tokenizer,
                loose,
                tight,
            } => format!(
                "canopy_{}({}, loose={}, tight={})",
                tokenizer.label(),
                schema.name(*attr),
                loose,
                tight
            ),
            Blocker::SuffixKey { key, suffix_len } => {
                format!("suffix{}({})", suffix_len, key.describe(schema))
            }
            Blocker::Union(parts) => parts
                .iter()
                .map(|p| p.describe(schema))
                .collect::<Vec<_>>()
                .join(" OR "),
            Blocker::Intersect(parts) => parts
                .iter()
                .map(|p| format!("({})", p.describe(schema)))
                .collect::<Vec<_>>()
                .join(" AND "),
        }
    }
}

/// Shared-token count for small pairwise checks (quadratic-free: sorts).
fn shared_tokens(a: &[String], b: &[String]) -> usize {
    let mut a: Vec<&str> = a.iter().map(|s| s.as_str()).collect();
    let mut b: Vec<&str> = b.iter().map(|s| s.as_str()).collect();
    a.sort_unstable();
    b.sort_unstable();
    let (mut i, mut j, mut o) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                o += 1;
                i += 1;
                j += 1;
            }
        }
    }
    o
}

/// The last `n` characters of `s`, `None` when `s` is shorter than `n`.
fn suffix_of(s: &str, n: usize) -> Option<String> {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < n {
        return None;
    }
    Some(chars[chars.len() - n..].iter().collect())
}

/// Suffix blocking: two keys share a suffix of length ≥ `n` iff their
/// last `n` characters agree, so this reduces to a hash join on key
/// suffixes.
fn suffix_join(a: &Table, b: &Table, key: &KeyFunc, n: usize) -> PairSet {
    let n = n.max(1);
    let mut blocks: FxHashMap<String, Vec<TupleId>> = fx_map();
    for id in a.ids() {
        if let Some(sfx) = key.key(a, id).and_then(|k| suffix_of(&k, n)) {
            blocks.entry(sfx).or_default().push(id);
        }
    }
    let mut out = PairSet::new();
    for bid in b.ids() {
        if let Some(sfx) = key.key(b, bid).and_then(|k| suffix_of(&k, n)) {
            if let Some(aids) = blocks.get(&sfx) {
                for &aid in aids {
                    out.insert(aid, bid);
                }
            }
        }
    }
    out
}

/// Hash blocking: partition `A` by key, probe with `B`'s keys.
fn hash_join(a: &Table, b: &Table, key: &KeyFunc) -> PairSet {
    let mut blocks: FxHashMap<String, Vec<TupleId>> = fx_map();
    for id in a.ids() {
        if let Some(k) = key.key(a, id) {
            blocks.entry(k).or_default().push(id);
        }
    }
    let mut out = PairSet::new();
    for bid in b.ids() {
        if let Some(k) = key.key(b, bid) {
            if let Some(aids) = blocks.get(&k) {
                for &aid in aids {
                    out.insert(aid, bid);
                }
            }
        }
    }
    out
}

/// Sorted-neighborhood blocking: sort all keyed tuples from both tables
/// by key, then output every A-B pair within `window` positions.
fn sorted_neighborhood(a: &Table, b: &Table, key: &KeyFunc, window: usize) -> PairSet {
    let window = window.max(1);
    // (key, side, id); side 0 = A, 1 = B.
    let mut rows: Vec<(String, u8, TupleId)> = Vec::with_capacity(a.len() + b.len());
    for id in a.ids() {
        if let Some(k) = key.key(a, id) {
            rows.push((k, 0, id));
        }
    }
    for id in b.ids() {
        if let Some(k) = key.key(b, id) {
            rows.push((k, 1, id));
        }
    }
    rows.sort_unstable();
    let mut out = PairSet::new();
    for (i, (_, side_i, id_i)) in rows.iter().enumerate() {
        for (_, side_j, id_j) in rows.iter().skip(i + 1).take(window) {
            match (side_i, side_j) {
                (0, 1) => {
                    out.insert(*id_i, *id_j);
                }
                (1, 0) => {
                    out.insert(*id_j, *id_i);
                }
                _ => {}
            }
        }
    }
    out
}

/// Edit-distance join over blocking keys with q-gram count filtering.
///
/// Two strings within edit distance `k` share at least
/// `max(|G_x|, |G_y|) − k·q` padded q-grams (each edit destroys ≤ q
/// grams); when that bound is non-positive (very short keys) we fall back
/// to comparing against all length-compatible short keys.
fn edit_join(a: &Table, b: &Table, key: &KeyFunc, max_ed: usize) -> PairSet {
    const Q: usize = 2;
    let keys_a = collect_keys(a, key);
    let keys_b = collect_keys(b, key);

    // q-gram index over B's distinct keys.
    let mut gram_index: FxHashMap<String, Vec<u32>> = fx_map();
    let b_keys: Vec<&String> = keys_b.keys().collect();
    let b_grams: Vec<Vec<String>> = b_keys.iter().map(|k| qgram_tokens(k, Q)).collect();
    for (i, grams) in b_grams.iter().enumerate() {
        let mut sorted = grams.clone();
        sorted.sort_unstable();
        sorted.dedup();
        for g in sorted {
            gram_index.entry(g).or_default().push(i as u32);
        }
    }
    // Short B keys (count filter vacuous) bucketed by length.
    let mut short_b: Vec<u32> = Vec::new();
    for (i, k) in b_keys.iter().enumerate() {
        if k.chars().count() + Q - 1 <= max_ed * Q {
            short_b.push(i as u32);
        }
    }

    let mut out = PairSet::new();
    let mut counts: FxHashMap<u32, usize> = fx_map();
    for (ka, ids_a) in &keys_a {
        let la = ka.chars().count();
        counts.clear();
        let grams_a = qgram_tokens(ka, Q);
        for g in &grams_a {
            if let Some(list) = gram_index.get(g) {
                for &bi in list {
                    *counts.entry(bi).or_insert(0) += 1;
                }
            }
        }
        let mut candidates: Vec<u32> = Vec::new();
        for (&bi, &shared) in counts.iter() {
            let lb = b_keys[bi as usize].chars().count();
            if la.abs_diff(lb) > max_ed {
                continue;
            }
            let need = (la.max(lb) + Q - 1).saturating_sub(max_ed * Q).max(1);
            if shared >= need {
                candidates.push(bi);
            }
        }
        // Short keys may share zero grams with a within-k partner.
        if la + Q - 1 <= max_ed * Q {
            for &bi in &short_b {
                if counts.get(&bi).is_none_or(|&c| {
                    let lb = b_keys[bi as usize].chars().count();
                    c < (la.max(lb) + Q - 1).saturating_sub(max_ed * Q).max(1)
                }) && la.abs_diff(b_keys[bi as usize].chars().count()) <= max_ed
                {
                    candidates.push(bi);
                }
            }
        } else {
            for &bi in &short_b {
                let lb = b_keys[bi as usize].chars().count();
                if la.abs_diff(lb) <= max_ed && !counts.contains_key(&bi) {
                    candidates.push(bi);
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        for bi in candidates {
            let kb = b_keys[bi as usize];
            if within_edit_distance(ka, kb, max_ed) {
                for &aid in ids_a {
                    for &bid in &keys_b[kb] {
                        out.insert(aid, bid);
                    }
                }
            }
        }
    }
    out
}

fn collect_keys(t: &Table, key: &KeyFunc) -> FxHashMap<String, Vec<TupleId>> {
    let mut m: FxHashMap<String, Vec<TupleId>> = fx_map();
    for id in t.ids() {
        if let Some(k) = key.key(t, id) {
            m.entry(k).or_default().push(id);
        }
    }
    m
}

/// Numeric band join: bucket by `width`, probe adjacent buckets, verify.
fn num_band(a: &Table, b: &Table, attr: AttrId, width: f64) -> PairSet {
    assert!(width > 0.0, "band width must be positive");
    let parse = |t: &Table, id: TupleId| -> Option<f64> {
        t.value(id, attr).and_then(|v| v.trim().parse().ok())
    };
    let mut buckets: FxHashMap<i64, Vec<(TupleId, f64)>> = fx_map();
    for id in a.ids() {
        if let Some(v) = parse(a, id) {
            buckets
                .entry((v / width).floor() as i64)
                .or_default()
                .push((id, v));
        }
    }
    let mut out = PairSet::new();
    for bid in b.ids() {
        let Some(v) = parse(b, bid) else { continue };
        let bucket = (v / width).floor() as i64;
        for probe in [bucket - 1, bucket, bucket + 1] {
            if let Some(list) = buckets.get(&probe) {
                for &(aid, va) in list {
                    if (va - v).abs() <= width + 1e-9 {
                        out.insert(aid, bid);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_table::{Schema, Tuple};
    use std::sync::Arc;

    fn tables() -> (Table, Table) {
        // Figure 1 of the paper.
        let schema = Arc::new(Schema::from_names(["name", "city", "age"]));
        let mut a = Table::new("A", Arc::clone(&schema));
        a.push(Tuple::from_present(["Dave Smith", "Altanta", "18"])); // a1
        a.push(Tuple::from_present(["Daniel Smith", "LA", "18"])); // a2
        a.push(Tuple::from_present(["Joe Welson", "New York", "25"])); // a3
        a.push(Tuple::from_present(["Charles Williams", "Chicago", "45"])); // a4
        a.push(Tuple::from_present(["Charlie William", "Atlanta", "28"])); // a5
        let mut b = Table::new("B", schema);
        b.push(Tuple::from_present(["David Smith", "Atlanta", "18"])); // b1
        b.push(Tuple::from_present(["Joe Wilson", "NY", "25"])); // b2
        b.push(Tuple::from_present(["Daniel W. Smith", "LA", "30"])); // b3
        b.push(Tuple::from_present(["Charles Williams", "Chicago", "45"])); // b4
        (a, b)
    }

    #[test]
    fn figure1_q1_city_equivalence() {
        let (a, b) = tables();
        let q1 = Blocker::Hash(KeyFunc::Attr(AttrId(1)));
        let c1 = q1.apply(&a, &b);
        // C1 = {(a2,b3), (a4,b4), (a5,b1)} — exactly the paper's Figure 1.b.
        assert_eq!(c1.to_sorted_vec(), vec![(1, 2), (3, 3), (4, 0)]);
    }

    #[test]
    fn figure1_q2_adds_lastword_matches() {
        let (a, b) = tables();
        let q2 = Blocker::Union(vec![
            Blocker::Hash(KeyFunc::Attr(AttrId(1))),
            Blocker::Hash(KeyFunc::LastWord(AttrId(0))),
        ]);
        let c2 = q2.apply(&a, &b);
        // Q2 keeps (a1,b1) [smith = smith] but still kills (a3,b2)
        // [welson vs wilson].
        assert!(c2.contains(0, 0));
        assert!(!c2.contains(2, 1));
        // Figure 1.c: C2 = {(a1,b1),(a1,b3),(a2,b1),(a2,b3),(a4,b4),(a5,b1)}
        assert_eq!(
            c2.to_sorted_vec(),
            vec![(0, 0), (0, 2), (1, 0), (1, 2), (3, 3), (4, 0)]
        );
    }

    #[test]
    fn figure1_q3_edit_distance_recovers_welson() {
        let (a, b) = tables();
        let q3 = Blocker::Union(vec![
            Blocker::Hash(KeyFunc::Attr(AttrId(1))),
            Blocker::EditSim {
                key: KeyFunc::LastWord(AttrId(0)),
                max_ed: 2,
            },
        ]);
        let c3 = q3.apply(&a, &b);
        // (a3,b2): welson vs wilson, ed = 1 ≤ 2 — now kept.
        assert!(c3.contains(2, 1));
        // (a5,b4): william vs williams, ed = 1 — kept.
        assert!(c3.contains(4, 3));
    }

    #[test]
    fn edit_join_agrees_with_brute_force() {
        let (a, b) = tables();
        for k in 0..4usize {
            let blocker = Blocker::EditSim {
                key: KeyFunc::LastWord(AttrId(0)),
                max_ed: k,
            };
            let fast = blocker.apply(&a, &b).to_sorted_vec();
            let mut slow = Vec::new();
            for ai in a.ids() {
                for bi in b.ids() {
                    if blocker.keeps(&a, &b, ai, bi) {
                        slow.push((ai, bi));
                    }
                }
            }
            slow.sort_unstable();
            assert_eq!(fast, slow, "k={k}");
        }
    }

    #[test]
    fn overlap_blocker_keeps_sharing_pairs() {
        let (a, b) = tables();
        let ol = Blocker::Overlap {
            attr: AttrId(0),
            tokenizer: Tokenizer::Word,
            min_common: 1,
        };
        let c = ol.apply(&a, &b);
        assert!(c.contains(0, 0)); // share "smith"
        assert!(c.contains(2, 1)); // share "joe"
        assert!(!c.contains(0, 1)); // no shared name word
    }

    #[test]
    fn sim_blocker_matches_pairwise_form() {
        let (a, b) = tables();
        let sim = Blocker::Sim {
            attr: AttrId(0),
            tokenizer: Tokenizer::Word,
            measure: SetMeasure::Jaccard,
            threshold: 0.3,
        };
        let fast = sim.apply(&a, &b).to_sorted_vec();
        let mut slow = Vec::new();
        for ai in a.ids() {
            for bi in b.ids() {
                if sim.keeps(&a, &b, ai, bi) {
                    slow.push((ai, bi));
                }
            }
        }
        slow.sort_unstable();
        assert_eq!(fast, slow);
    }

    #[test]
    fn num_band_blocker() {
        let (a, b) = tables();
        let nb = Blocker::NumBand {
            attr: AttrId(2),
            width: 5.0,
        };
        let c = nb.apply(&a, &b);
        assert!(c.contains(0, 0)); // 18 vs 18
        assert!(!c.contains(1, 2)); // (a2=18, b3=30) differ by 12 > 5
        assert!(c.contains(2, 1)); // 25 vs 25
                                   // brute-force agreement
        for ai in a.ids() {
            for bi in b.ids() {
                assert_eq!(c.contains(ai, bi), nb.keeps(&a, &b, ai, bi), "({ai},{bi})");
            }
        }
    }

    #[test]
    fn intersect_filters_with_remaining_conjuncts() {
        let (a, b) = tables();
        let conj = Blocker::Intersect(vec![
            Blocker::Hash(KeyFunc::LastWord(AttrId(0))),
            Blocker::NumBand {
                attr: AttrId(2),
                width: 1.0,
            },
        ]);
        let c = conj.apply(&a, &b);
        assert!(c.contains(0, 0)); // smith & age equal
        assert!(!c.contains(1, 2)); // smith but ages 18 vs 30
    }

    #[test]
    fn sorted_neighborhood_finds_near_keys() {
        let (a, b) = tables();
        let sn = Blocker::SortedNeighborhood {
            key: KeyFunc::LastWord(AttrId(0)),
            window: 2,
        };
        let c = sn.apply(&a, &b);
        // "william" (a5) and "williams" (b4) are adjacent in sorted order.
        assert!(c.contains(4, 3));
        // every pair with equal keys within the window also appears
        assert!(c.len() >= 3);
    }

    #[test]
    fn describe_mentions_structure() {
        let (a, _) = tables();
        let s = a.schema();
        let q3 = Blocker::Union(vec![
            Blocker::Hash(KeyFunc::Attr(AttrId(1))),
            Blocker::EditSim {
                key: KeyFunc::LastWord(AttrId(0)),
                max_ed: 2,
            },
        ]);
        let d = q3.describe(s);
        assert!(d.contains("hash(city)"));
        assert!(d.contains("OR"));
        assert!(d.contains("ed(lastword(name)) <= 2"));
    }

    #[test]
    fn suffix_key_blocker() {
        let (a, b) = tables();
        // Last 4 chars of lastword(name): "mith" pairs smith/smith;
        // "liam" pairs william(s)... williams' last4 = "iams" vs
        // william's "liam" → no pair.
        let sfx = Blocker::SuffixKey {
            key: KeyFunc::LastWord(AttrId(0)),
            suffix_len: 4,
        };
        let c = sfx.apply(&a, &b);
        assert!(c.contains(0, 0));
        assert!(!c.contains(4, 3));
        // brute-force agreement with the pairwise form
        for ai in a.ids() {
            for bi in b.ids() {
                assert_eq!(c.contains(ai, bi), sfx.keeps(&a, &b, ai, bi));
            }
        }
    }

    #[test]
    fn canopy_blocker_applies() {
        let (a, b) = tables();
        let cb = Blocker::Canopy {
            attr: AttrId(0),
            tokenizer: Tokenizer::Word,
            loose: 0.3,
            tight: 0.8,
        };
        let c = cb.apply(&a, &b);
        // dave smith / david smith share "smith": jaccard 1/3 ≥ 0.3.
        assert!(c.contains(0, 0));
        assert!(cb.describe(a.schema()).contains("canopy"));
    }

    #[test]
    #[should_panic(expected = "no pairwise form")]
    fn canopy_has_no_pairwise_form() {
        let (a, b) = tables();
        let cb = Blocker::Canopy {
            attr: AttrId(0),
            tokenizer: Tokenizer::Word,
            loose: 0.3,
            tight: 0.8,
        };
        let _ = cb.keeps(&a, &b, 0, 0);
    }

    #[test]
    fn missing_keys_block_nothing() {
        let schema = Arc::new(Schema::from_names(["x"]));
        let mut a = Table::new("A", Arc::clone(&schema));
        a.push(Tuple::new(vec![None]));
        let mut b = Table::new("B", schema);
        b.push(Tuple::new(vec![None]));
        let c = Blocker::Hash(KeyFunc::Attr(AttrId(0))).apply(&a, &b);
        assert!(c.is_empty());
        let c = Blocker::EditSim {
            key: KeyFunc::Attr(AttrId(0)),
            max_ed: 2,
        }
        .apply(&a, &b);
        assert!(c.is_empty());
    }
}

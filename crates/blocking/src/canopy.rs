//! Canopy blocking (§2 "other types of blockers": canopy clustering).
//!
//! Classic canopy clustering (McCallum et al.): repeatedly pick an
//! unprocessed record as a *center*; every record whose cheap similarity
//! to the center is at least the **loose** threshold joins the canopy;
//! records within the **tight** threshold are removed from the center
//! pool. Pairs of A/B records sharing a canopy survive blocking.
//!
//! The cheap similarity here is word-level Jaccard over one attribute,
//! evaluated with an inverted index, so canopy formation is near-linear
//! in practice. Canopy membership depends on center choice, so this
//! blocker has **no pairwise form** — like sorted-neighborhood blocking
//! it is inherently set-at-a-time.

use mc_strsim::dict::TokenizedTable;
use mc_strsim::measures::SetMeasure;
use mc_strsim::tokenize::Tokenizer;
use mc_table::hash::{fx_map, FxHashMap};
use mc_table::{AttrId, PairSet, Table, TupleId};

/// Parameters of canopy blocking.
#[derive(Debug, Clone, Copy)]
pub struct CanopyParams {
    /// Attribute whose tokens drive the cheap similarity.
    pub attr: AttrId,
    /// Tokenizer for that attribute.
    pub tokenizer: Tokenizer,
    /// Loose threshold: records this similar to a center join its canopy.
    pub loose: f64,
    /// Tight threshold (≥ loose): records this similar stop being future
    /// centers.
    pub tight: f64,
}

/// Runs canopy blocking over two tables, returning the surviving pairs.
pub fn canopy_block(a: &Table, b: &Table, params: CanopyParams) -> PairSet {
    assert!(
        params.tight >= params.loose,
        "tight threshold must be at least the loose threshold"
    );
    let (ta, tb, _) = TokenizedTable::build_pair(a, b, &[params.attr], params.tokenizer);
    // Unified record space: A records first, then B.
    let n_a = ta.rows();
    let n = n_a + tb.rows();
    let rec = |i: usize| -> &[u32] {
        if i < n_a {
            ta.ranks(0, i as TupleId)
        } else {
            tb.ranks(0, (i - n_a) as TupleId)
        }
    };
    // Inverted index over all records.
    let mut postings: FxHashMap<u32, Vec<u32>> = fx_map();
    for i in 0..n {
        let mut last = None;
        for &t in rec(i) {
            if last == Some(t) {
                continue;
            }
            last = Some(t);
            postings.entry(t).or_default().push(i as u32);
        }
    }

    let mut out = PairSet::new();
    let mut removed = vec![false; n];
    let mut overlap_count: FxHashMap<u32, usize> = fx_map();
    for center in 0..n {
        if removed[center] || rec(center).is_empty() {
            continue;
        }
        removed[center] = true;
        // Gather candidates sharing ≥ 1 token with the center.
        overlap_count.clear();
        let mut last = None;
        for &t in rec(center) {
            if last == Some(t) {
                continue;
            }
            last = Some(t);
            if let Some(list) = postings.get(&t) {
                for &o in list {
                    *overlap_count.entry(o).or_insert(0) += 1;
                }
            }
        }
        let mut members_a: Vec<TupleId> = Vec::new();
        let mut members_b: Vec<TupleId> = Vec::new();
        let push_member = |i: usize, ma: &mut Vec<TupleId>, mb: &mut Vec<TupleId>| {
            if i < n_a {
                ma.push(i as TupleId);
            } else {
                mb.push((i - n_a) as TupleId);
            }
        };
        push_member(center, &mut members_a, &mut members_b);
        for (&o, _) in overlap_count.iter() {
            let o = o as usize;
            if o == center {
                continue;
            }
            let s = SetMeasure::Jaccard.score(rec(center), rec(o));
            if s >= params.loose {
                push_member(o, &mut members_a, &mut members_b);
                if s >= params.tight {
                    removed[o] = true;
                }
            }
        }
        for &x in &members_a {
            for &y in &members_b {
                out.insert(x, y);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_table::{Schema, Tuple};
    use std::sync::Arc;

    fn tables() -> (Table, Table) {
        let schema = Arc::new(Schema::from_names(["name"]));
        let mut a = Table::new("A", Arc::clone(&schema));
        a.push(Tuple::from_present(["dave smith senior"]));
        a.push(Tuple::from_present(["completely unrelated words"]));
        let mut b = Table::new("B", schema);
        b.push(Tuple::from_present(["dave smith junior"]));
        b.push(Tuple::from_present(["another thing entirely"]));
        (a, b)
    }

    fn params(loose: f64, tight: f64) -> CanopyParams {
        CanopyParams {
            attr: AttrId(0),
            tokenizer: Tokenizer::Word,
            loose,
            tight,
        }
    }

    #[test]
    fn similar_records_share_a_canopy() {
        let (a, b) = tables();
        let c = canopy_block(&a, &b, params(0.4, 0.9));
        assert!(
            c.contains(0, 0),
            "dave smith variants should share a canopy"
        );
        assert!(!c.contains(0, 1));
        assert!(!c.contains(1, 0));
    }

    #[test]
    fn loose_zero_pairs_anything_sharing_a_token() {
        let (a, b) = tables();
        let c = canopy_block(&a, &b, params(0.01, 0.9));
        assert!(c.contains(0, 0));
        // Disjoint-token records never share a canopy regardless.
        assert!(!c.contains(1, 0));
    }

    #[test]
    fn impossible_threshold_blocks_everything() {
        let (a, b) = tables();
        let c = canopy_block(&a, &b, params(0.99, 0.99));
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "tight threshold")]
    fn tight_below_loose_panics() {
        let (a, b) = tables();
        let _ = canopy_block(&a, &b, params(0.8, 0.2));
    }

    #[test]
    fn empty_values_are_ignored() {
        let schema = Arc::new(Schema::from_names(["name"]));
        let mut a = Table::new("A", Arc::clone(&schema));
        a.push(Tuple::new(vec![None]));
        let mut b = Table::new("B", schema);
        b.push(Tuple::from_present(["anything"]));
        let c = canopy_block(&a, &b, params(0.1, 0.5));
        assert!(c.is_empty());
    }
}

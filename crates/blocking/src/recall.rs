//! Blocker accuracy reporting.
//!
//! Wraps Definition 2.1 (blocker recall) plus the bookkeeping the
//! experiments print: candidate-set size, selectivity `|C| / |A × B|`,
//! surviving and killed match counts.

use crate::blocker::Blocker;
use mc_table::{GoldMatches, PairSet, Table};

/// Accuracy report for one blocker on one dataset.
#[derive(Debug, Clone)]
pub struct BlockerReport {
    /// Blocker description.
    pub blocker: String,
    /// `|C|`, the candidate-set size.
    pub candidates: usize,
    /// `|C| / |A × B|`.
    pub selectivity: f64,
    /// `|M|`, total gold matches.
    pub gold: usize,
    /// `|M ∩ C|`, surviving matches.
    pub surviving: usize,
    /// `|M| − |M ∩ C|` — column MD of Table 3.
    pub killed: usize,
    /// `|M ∩ C| / |M|` — Definition 2.1.
    pub recall: f64,
}

impl BlockerReport {
    /// Applies `blocker` and measures it against `gold`.
    pub fn measure(blocker: &Blocker, a: &Table, b: &Table, gold: &GoldMatches) -> Self {
        let c = blocker.apply(a, b);
        Self::from_candidates(blocker.describe(a.schema()), &c, a, b, gold)
    }

    /// Builds a report from an already-computed candidate set.
    pub fn from_candidates(
        description: String,
        c: &PairSet,
        a: &Table,
        b: &Table,
        gold: &GoldMatches,
    ) -> Self {
        let cross = (a.len() as f64) * (b.len() as f64);
        let surviving = gold.surviving(c);
        BlockerReport {
            blocker: description,
            candidates: c.len(),
            selectivity: if cross == 0.0 {
                0.0
            } else {
                c.len() as f64 / cross
            },
            gold: gold.len(),
            surviving,
            killed: gold.len() - surviving,
            recall: gold.recall(c),
        }
    }
}

impl std::fmt::Display for BlockerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: |C|={} sel={:.5} recall={:.1}% killed={}",
            self.blocker,
            self.candidates,
            self.selectivity,
            self.recall * 100.0,
            self.killed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyFunc;
    use mc_table::{AttrId, Schema, Tuple};
    use std::sync::Arc;

    #[test]
    fn report_counts_are_consistent() {
        let schema = Arc::new(Schema::from_names(["city"]));
        let mut a = Table::new("A", Arc::clone(&schema));
        a.push(Tuple::from_present(["x"]));
        a.push(Tuple::from_present(["y"]));
        let mut b = Table::new("B", schema);
        b.push(Tuple::from_present(["x"]));
        b.push(Tuple::from_present(["z"]));
        let gold = GoldMatches::from_pairs([(0, 0), (1, 1)]);
        let r = BlockerReport::measure(&Blocker::Hash(KeyFunc::Attr(AttrId(0))), &a, &b, &gold);
        assert_eq!(r.candidates, 1);
        assert_eq!(r.surviving, 1);
        assert_eq!(r.killed, 1);
        assert_eq!(r.recall, 0.5);
        assert!((r.selectivity - 0.25).abs() < 1e-12);
        let s = r.to_string();
        assert!(s.contains("recall=50.0%"));
    }
}

#![warn(missing_docs)]

//! # mc-blocking
//!
//! A blocking framework for entity matching, covering every blocker type
//! surveyed in §2 of the MatchCatcher paper:
//!
//! * **attribute equivalence / hash** — share a blocking key ([`key`]);
//! * **sorted neighborhood** — keys within a window of the sorted order;
//! * **overlap** — share at least `c` tokens;
//! * **similarity (SIM)** — set-similarity or edit-distance predicates,
//!   executed with prefix-filter / q-gram indexes from `mc-strsim`;
//! * **numeric band** — values within an absolute difference;
//! * **rule-based** — boolean combinations (unions/intersections) of the
//!   above.
//!
//! A [`Blocker`] is a *keep* predicate: applying it to tables `A`, `B`
//! yields the candidate set `C ⊆ A × B` that survives blocking
//! ([`Blocker::apply`]). MatchCatcher itself never sees the blocker — only
//! `C` — which this crate produces.
//!
//! [`recall`] computes the paper's accuracy metrics against gold matches.

pub mod blocker;
pub mod canopy;
pub mod key;
pub mod recall;
pub mod soundex;

pub use blocker::Blocker;
pub use key::KeyFunc;
pub use recall::BlockerReport;

//! Random forests: bagged CART trees with feature subsampling.
//!
//! The verifier's signal is [`RandomForest::confidence`] — the fraction of
//! trees voting "match" — exactly the paper's definition of positive
//! prediction confidence (§5, "the fraction of decision trees in F that
//! predict the item as a match").
//!
//! Fitting and batch scoring run on scoped worker threads and are
//! **bit-identical at any thread count**: tree `t` is grown from its own
//! `StdRng` seeded by a per-tree derivation of the base seed, so no tree's
//! randomness depends on how work was scheduled, and batch scores are
//! written into disjoint per-chunk output slices. Bootstrap samples are
//! index lists into shared training data ([`RowsView`]) — resampling
//! never clones a row.

use crate::data::{MatrixSamples, RowsView, Samples, VecSamples};
use crate::tree::{DecisionTree, TreeParams, TreeScratch};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Rows scored per unit of parallel predict work (and per
/// `mc.ml.forest.predict_chunk_us` histogram observation).
const PREDICT_CHUNK: usize = 256;

/// One unit of batch-scoring work: input row ids and their output slots.
type ScoreJob<'i, 'o> = (&'i [usize], &'o mut [(f64, f64)]);

/// Random-forest hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum depth of each tree.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Features per split; `0` = `ceil(sqrt(n_features))`.
    pub features_per_split: usize,
    /// Seed for bagging and feature sampling (the forest is fully
    /// deterministic given this seed and the training data, regardless
    /// of `threads`).
    pub seed: u64,
    /// Worker threads for fitting and batch scoring; `0` = all cores.
    /// Never affects results, only wall-clock.
    pub threads: usize,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 10,
            max_depth: 8,
            min_samples_split: 2,
            features_per_split: 0,
            seed: 0x5eed,
            threads: 0,
        }
    }
}

/// The seed for tree `t`'s private rng. XOR with an odd multiplier of the
/// (1-based) tree index spreads consecutive trees across the seed space;
/// `StdRng::seed_from_u64` then runs it through SplitMix64, so even
/// adjacent derived seeds yield unrelated streams.
fn tree_seed(base: u64, t: usize) -> u64 {
    base ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        requested
    }
}

/// A trained random forest for binary classification.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Fits a forest on row-major features `x` and labels `y`.
    ///
    /// Each tree sees a bootstrap sample (with replacement) of the training
    /// rows; splits consider a random feature subset of size
    /// `features_per_split` (default `ceil(sqrt(n_features))`).
    pub fn fit(x: &[Vec<f64>], y: &[bool], params: &ForestParams) -> Self {
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        assert!(!x.is_empty(), "cannot fit a forest on zero samples");
        Self::fit_impl(&VecSamples { x, y }, params)
    }

    /// Fits a forest where training sample `s` is row `idx[s]` of the flat
    /// matrix `rows`, labeled `y[s]`. This is the verifier's refit path:
    /// the matrix is built once and every refit only touches index lists.
    pub fn fit_matrix(
        rows: RowsView<'_>,
        idx: &[usize],
        y: &[bool],
        params: &ForestParams,
    ) -> Self {
        assert_eq!(idx.len(), y.len(), "index/label length mismatch");
        assert!(!idx.is_empty(), "cannot fit a forest on zero samples");
        Self::fit_impl(&MatrixSamples { rows, idx, y }, params)
    }

    fn fit_impl<S: Samples + Sync>(samples: &S, params: &ForestParams) -> Self {
        let _span = mc_obs::span!("mc.ml.forest.fit_par");
        let n_features = samples.n_features();
        let per_split = if params.features_per_split == 0 {
            (n_features as f64).sqrt().ceil() as usize
        } else {
            params.features_per_split
        };
        let tree_params = TreeParams {
            max_depth: params.max_depth,
            min_samples_split: params.min_samples_split,
            features_per_split: per_split.max(1),
        };
        let m = samples.n_samples();

        let fit_one = |t: usize, scratch: &mut TreeScratch| -> DecisionTree {
            let mut rng = StdRng::seed_from_u64(tree_seed(params.seed, t));
            let picks: Vec<usize> = (0..m).map(|_| rng.random_range(0..m)).collect();
            // Single-class bootstrap samples still produce a valid
            // (leaf-only) tree, so no stratification is needed.
            DecisionTree::fit_samples(samples, picks, &tree_params, &mut rng, scratch)
        };

        let threads = resolve_threads(params.threads).min(params.n_trees.max(1));
        if threads <= 1 {
            let mut scratch = TreeScratch::default();
            let trees = (0..params.n_trees)
                .map(|t| fit_one(t, &mut scratch))
                .collect();
            return RandomForest { trees };
        }

        // Deterministic parallel fit: slot t only ever receives tree t,
        // so the assembled forest is independent of scheduling.
        let slots: Vec<OnceLock<DecisionTree>> =
            (0..params.n_trees).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        let obs = mc_obs::ObsContext::current();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    let _obs = obs.attach();
                    let mut scratch = TreeScratch::default();
                    loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= params.n_trees {
                            break;
                        }
                        let _ = slots[t].set(fit_one(t, &mut scratch));
                    }
                });
            }
        });
        let trees = slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every tree slot filled"))
            .collect();
        RandomForest { trees }
    }

    /// One pass over the trees computing `(confidence, mean_proba)` —
    /// half the tree walks of calling [`RandomForest::confidence`] and
    /// [`RandomForest::mean_proba`] separately.
    pub fn score(&self, sample: &[f64]) -> (f64, f64) {
        let mut votes = 0usize;
        let mut proba_sum = 0f64;
        for t in &self.trees {
            let p = t.predict_proba(sample);
            if p > 0.5 {
                votes += 1;
            }
            proba_sum += p;
        }
        let n = self.trees.len() as f64;
        (votes as f64 / n, proba_sum / n)
    }

    /// `(confidence, mean_proba)` for each row of `rows` selected by
    /// `idx`, scored in parallel chunks of [`PREDICT_CHUNK`] rows across
    /// `threads` workers (`0` = all cores). Row order is preserved and
    /// results are identical at any thread count.
    pub fn score_batch(
        &self,
        rows: RowsView<'_>,
        idx: &[usize],
        threads: usize,
    ) -> Vec<(f64, f64)> {
        let mut out = vec![(0.0, 0.0); idx.len()];
        self.score_batch_into(rows, idx, threads, &mut out);
        out
    }

    /// [`RandomForest::score_batch`] writing into a caller-owned buffer,
    /// for allocation-free steady-state loops. `out.len()` must equal
    /// `idx.len()`.
    pub fn score_batch_into(
        &self,
        rows: RowsView<'_>,
        idx: &[usize],
        threads: usize,
        out: &mut [(f64, f64)],
    ) {
        assert_eq!(idx.len(), out.len(), "index/output length mismatch");
        if idx.is_empty() {
            return;
        }
        let score_chunk = |ids: &[usize], outs: &mut [(f64, f64)]| {
            let start = std::time::Instant::now();
            for (o, &i) in outs.iter_mut().zip(ids) {
                *o = self.score(rows.row(i));
            }
            mc_obs::histogram!("mc.ml.forest.predict_chunk_us")
                .record(start.elapsed().as_micros() as u64);
        };

        let mut jobs: Vec<ScoreJob<'_, '_>> = idx
            .chunks(PREDICT_CHUNK)
            .zip(out.chunks_mut(PREDICT_CHUNK))
            .collect();
        let threads = resolve_threads(threads).min(jobs.len());
        if threads <= 1 {
            for (ids, outs) in jobs.iter_mut() {
                score_chunk(ids, outs);
            }
            return;
        }
        let per_worker = jobs.len().div_ceil(threads);
        let obs = mc_obs::ObsContext::current();
        std::thread::scope(|s| {
            for group in jobs.chunks_mut(per_worker) {
                let obs = &obs;
                s.spawn(move || {
                    let _obs = obs.attach();
                    for (ids, outs) in group.iter_mut() {
                        score_chunk(ids, outs);
                    }
                });
            }
        });
    }

    /// Confidence for each selected row; see [`RandomForest::score_batch`].
    pub fn confidence_batch(&self, rows: RowsView<'_>, idx: &[usize], threads: usize) -> Vec<f64> {
        self.score_batch(rows, idx, threads)
            .into_iter()
            .map(|(c, _)| c)
            .collect()
    }

    /// Mean leaf probability for each selected row; see
    /// [`RandomForest::score_batch`].
    pub fn proba_batch(&self, rows: RowsView<'_>, idx: &[usize], threads: usize) -> Vec<f64> {
        self.score_batch(rows, idx, threads)
            .into_iter()
            .map(|(_, p)| p)
            .collect()
    }

    /// Fraction of trees classifying `sample` as positive — the verifier's
    /// "positive prediction confidence".
    pub fn confidence(&self, sample: &[f64]) -> f64 {
        let votes = self.trees.iter().filter(|t| t.predict(sample)).count();
        votes as f64 / self.trees.len() as f64
    }

    /// Mean leaf probability across trees (a smoother score than
    /// [`RandomForest::confidence`], useful for tie-breaking).
    pub fn mean_proba(&self, sample: &[f64]) -> f64 {
        self.trees
            .iter()
            .map(|t| t.predict_proba(sample))
            .sum::<f64>()
            / self.trees.len() as f64
    }

    /// Hard classification by majority vote.
    pub fn predict(&self, sample: &[f64]) -> bool {
        self.confidence(sample) > 0.5
    }

    /// Uncertainty of a sample: distance of confidence from 0.5, negated
    /// so that *higher = more controversial*. Active learning asks for the
    /// samples with the highest uncertainty.
    pub fn uncertainty(&self, sample: &[f64]) -> f64 {
        0.5 - (self.confidence(sample) - 0.5).abs()
    }

    /// Split-frequency feature importance: the fraction of split nodes
    /// across the forest that test each feature (sums to 1 when any
    /// splits exist). A cheap, monotone proxy for impurity-decrease
    /// importance, used to tell the user which attributes drive the
    /// match/non-match decision.
    pub fn feature_importance(&self) -> Vec<f64> {
        let n_features = self.trees.first().map_or(0, |t| t.n_features());
        let mut totals = vec![0usize; n_features];
        for t in &self.trees {
            for (f, c) in t.split_counts().into_iter().enumerate() {
                totals[f] += c;
            }
        }
        let sum: usize = totals.iter().sum();
        if sum == 0 {
            return vec![0.0; n_features];
        }
        totals.into_iter().map(|c| c as f64 / sum as f64).collect()
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True if the forest has no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable(n: usize) -> (Vec<Vec<f64>>, Vec<bool>) {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 10) as f64, ((i * 7) % 13) as f64])
            .collect();
        let y: Vec<bool> = x.iter().map(|r| r[0] >= 5.0).collect();
        (x, y)
    }

    fn flat(x: &[Vec<f64>]) -> Vec<f64> {
        x.iter().flatten().copied().collect()
    }

    #[test]
    fn learns_separable_data() {
        let (x, y) = separable(200);
        let f = RandomForest::fit(&x, &y, &ForestParams::default());
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, yi)| f.predict(xi) == **yi)
            .count();
        assert!(
            correct as f64 / x.len() as f64 > 0.95,
            "accuracy {correct}/{}",
            x.len()
        );
    }

    #[test]
    fn confidence_in_unit_interval() {
        let (x, y) = separable(50);
        let f = RandomForest::fit(&x, &y, &ForestParams::default());
        for s in &x {
            let c = f.confidence(s);
            assert!((0.0..=1.0).contains(&c));
            let p = f.mean_proba(s);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn uncertainty_peaks_at_half() {
        let (x, y) = separable(100);
        let f = RandomForest::fit(&x, &y, &ForestParams::default());
        for s in &x {
            let u = f.uncertainty(s);
            assert!((0.0..=0.5).contains(&u));
            assert!((u - (0.5 - (f.confidence(s) - 0.5).abs())).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = separable(80);
        let p = ForestParams {
            seed: 42,
            ..ForestParams::default()
        };
        let f1 = RandomForest::fit(&x, &y, &p);
        let f2 = RandomForest::fit(&x, &y, &p);
        assert_eq!(f1, f2);
        for s in &x {
            assert_eq!(f1.confidence(s), f2.confidence(s));
        }
    }

    #[test]
    fn parallel_fit_is_bit_identical_to_serial() {
        let (x, y) = separable(120);
        for threads in [2, 3, 8] {
            let serial = RandomForest::fit(
                &x,
                &y,
                &ForestParams {
                    threads: 1,
                    ..ForestParams::default()
                },
            );
            let parallel = RandomForest::fit(
                &x,
                &y,
                &ForestParams {
                    threads,
                    ..ForestParams::default()
                },
            );
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn matrix_fit_matches_vec_fit() {
        let (x, y) = separable(90);
        let buf = flat(&x);
        let rows = RowsView::new(&buf, 2);
        let idx: Vec<usize> = (0..x.len()).collect();
        let p = ForestParams::default();
        let owned = RandomForest::fit(&x, &y, &p);
        let matrix = RandomForest::fit_matrix(rows, &idx, &y, &p);
        assert_eq!(owned, matrix);
    }

    #[test]
    fn score_matches_confidence_and_proba() {
        let (x, y) = separable(60);
        let f = RandomForest::fit(&x, &y, &ForestParams::default());
        for s in &x {
            let (c, p) = f.score(s);
            assert_eq!(c, f.confidence(s));
            assert_eq!(p, f.mean_proba(s));
        }
    }

    #[test]
    fn batch_scores_match_single_sample_apis_at_any_thread_count() {
        let (x, y) = separable(700); // > PREDICT_CHUNK rows
        let f = RandomForest::fit(&x, &y, &ForestParams::default());
        let buf = flat(&x);
        let rows = RowsView::new(&buf, 2);
        let idx: Vec<usize> = (0..x.len()).rev().collect();
        let expected: Vec<(f64, f64)> = idx.iter().map(|&i| f.score(&x[i])).collect();
        for threads in [1, 2, 8] {
            assert_eq!(
                f.score_batch(rows, &idx, threads),
                expected,
                "threads = {threads}"
            );
        }
        let conf: Vec<f64> = expected.iter().map(|&(c, _)| c).collect();
        let proba: Vec<f64> = expected.iter().map(|&(_, p)| p).collect();
        assert_eq!(f.confidence_batch(rows, &idx, 2), conf);
        assert_eq!(f.proba_batch(rows, &idx, 2), proba);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (x, y) = separable(20);
        let f = RandomForest::fit(&x, &y, &ForestParams::default());
        let buf = flat(&x);
        let rows = RowsView::new(&buf, 2);
        assert!(f.score_batch(rows, &[], 4).is_empty());
    }

    #[test]
    fn single_class_training_is_stable() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![true, true, true];
        let f = RandomForest::fit(&x, &y, &ForestParams::default());
        assert_eq!(f.confidence(&[2.0]), 1.0);
        assert!(f.predict(&[99.0]));
    }

    #[test]
    fn feature_importance_finds_the_signal() {
        // Only feature 0 carries label information.
        let x: Vec<Vec<f64>> = (0..120)
            .map(|i| vec![(i % 10) as f64, ((i * 13 + 5) % 7) as f64])
            .collect();
        let y: Vec<bool> = x.iter().map(|r| r[0] >= 5.0).collect();
        let f = RandomForest::fit(&x, &y, &ForestParams::default());
        let imp = f.feature_importance();
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(imp[0] > imp[1], "importances {imp:?}");
    }

    #[test]
    fn importance_of_stump_forest_is_zero() {
        let x = vec![vec![1.0], vec![1.0]];
        let y = vec![true, true];
        let f = RandomForest::fit(&x, &y, &ForestParams::default());
        assert_eq!(f.feature_importance(), vec![0.0]);
    }

    #[test]
    fn forest_len() {
        let (x, y) = separable(20);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestParams {
                n_trees: 5,
                ..Default::default()
            },
        );
        assert_eq!(f.len(), 5);
        assert!(!f.is_empty());
    }
}

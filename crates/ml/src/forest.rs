//! Random forests: bagged CART trees with feature subsampling.
//!
//! The verifier's signal is [`RandomForest::confidence`] — the fraction of
//! trees voting "match" — exactly the paper's definition of positive
//! prediction confidence (§5, "the fraction of decision trees in F that
//! predict the item as a match").

use crate::tree::{DecisionTree, TreeParams};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// Random-forest hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum depth of each tree.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Features per split; `0` = `ceil(sqrt(n_features))`.
    pub features_per_split: usize,
    /// Seed for bagging and feature sampling (the forest is fully
    /// deterministic given this seed and the training data).
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 10,
            max_depth: 8,
            min_samples_split: 2,
            features_per_split: 0,
            seed: 0x5eed,
        }
    }
}

/// A trained random forest for binary classification.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Fits a forest on row-major features `x` and labels `y`.
    ///
    /// Each tree sees a bootstrap sample (with replacement) of the training
    /// rows; splits consider a random feature subset of size
    /// `features_per_split` (default `ceil(sqrt(n_features))`).
    pub fn fit(x: &[Vec<f64>], y: &[bool], params: &ForestParams) -> Self {
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        assert!(!x.is_empty(), "cannot fit a forest on zero samples");
        let n_features = x[0].len();
        let per_split = if params.features_per_split == 0 {
            (n_features as f64).sqrt().ceil() as usize
        } else {
            params.features_per_split
        };
        let tree_params = TreeParams {
            max_depth: params.max_depth,
            min_samples_split: params.min_samples_split,
            features_per_split: per_split.max(1),
        };
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut trees = Vec::with_capacity(params.n_trees);
        let mut bx: Vec<Vec<f64>> = Vec::with_capacity(x.len());
        let mut by: Vec<bool> = Vec::with_capacity(x.len());
        for _ in 0..params.n_trees {
            bx.clear();
            by.clear();
            for _ in 0..x.len() {
                let i = rng.random_range(0..x.len());
                bx.push(x[i].clone());
                by.push(y[i]);
            }
            // Guard against single-class bootstrap samples degrading the
            // vote: they still produce a valid (leaf-only) tree.
            trees.push(DecisionTree::fit(&bx, &by, &tree_params, &mut rng));
        }
        RandomForest { trees }
    }

    /// Fraction of trees classifying `sample` as positive — the verifier's
    /// "positive prediction confidence".
    pub fn confidence(&self, sample: &[f64]) -> f64 {
        let votes = self.trees.iter().filter(|t| t.predict(sample)).count();
        votes as f64 / self.trees.len() as f64
    }

    /// Mean leaf probability across trees (a smoother score than
    /// [`RandomForest::confidence`], useful for tie-breaking).
    pub fn mean_proba(&self, sample: &[f64]) -> f64 {
        self.trees
            .iter()
            .map(|t| t.predict_proba(sample))
            .sum::<f64>()
            / self.trees.len() as f64
    }

    /// Hard classification by majority vote.
    pub fn predict(&self, sample: &[f64]) -> bool {
        self.confidence(sample) > 0.5
    }

    /// Uncertainty of a sample: distance of confidence from 0.5, negated
    /// so that *higher = more controversial*. Active learning asks for the
    /// samples with the highest uncertainty.
    pub fn uncertainty(&self, sample: &[f64]) -> f64 {
        0.5 - (self.confidence(sample) - 0.5).abs()
    }

    /// Split-frequency feature importance: the fraction of split nodes
    /// across the forest that test each feature (sums to 1 when any
    /// splits exist). A cheap, monotone proxy for impurity-decrease
    /// importance, used to tell the user which attributes drive the
    /// match/non-match decision.
    pub fn feature_importance(&self) -> Vec<f64> {
        let n_features = self.trees.first().map_or(0, |t| t.n_features());
        let mut totals = vec![0usize; n_features];
        for t in &self.trees {
            for (f, c) in t.split_counts().into_iter().enumerate() {
                totals[f] += c;
            }
        }
        let sum: usize = totals.iter().sum();
        if sum == 0 {
            return vec![0.0; n_features];
        }
        totals.into_iter().map(|c| c as f64 / sum as f64).collect()
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True if the forest has no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable(n: usize) -> (Vec<Vec<f64>>, Vec<bool>) {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 10) as f64, ((i * 7) % 13) as f64])
            .collect();
        let y: Vec<bool> = x.iter().map(|r| r[0] >= 5.0).collect();
        (x, y)
    }

    #[test]
    fn learns_separable_data() {
        let (x, y) = separable(200);
        let f = RandomForest::fit(&x, &y, &ForestParams::default());
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, yi)| f.predict(xi) == **yi)
            .count();
        assert!(
            correct as f64 / x.len() as f64 > 0.95,
            "accuracy {correct}/{}",
            x.len()
        );
    }

    #[test]
    fn confidence_in_unit_interval() {
        let (x, y) = separable(50);
        let f = RandomForest::fit(&x, &y, &ForestParams::default());
        for s in &x {
            let c = f.confidence(s);
            assert!((0.0..=1.0).contains(&c));
            let p = f.mean_proba(s);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn uncertainty_peaks_at_half() {
        let (x, y) = separable(100);
        let f = RandomForest::fit(&x, &y, &ForestParams::default());
        for s in &x {
            let u = f.uncertainty(s);
            assert!((0.0..=0.5).contains(&u));
            assert!((u - (0.5 - (f.confidence(s) - 0.5).abs())).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = separable(80);
        let p = ForestParams {
            seed: 42,
            ..ForestParams::default()
        };
        let f1 = RandomForest::fit(&x, &y, &p);
        let f2 = RandomForest::fit(&x, &y, &p);
        for s in &x {
            assert_eq!(f1.confidence(s), f2.confidence(s));
        }
    }

    #[test]
    fn single_class_training_is_stable() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![true, true, true];
        let f = RandomForest::fit(&x, &y, &ForestParams::default());
        assert_eq!(f.confidence(&[2.0]), 1.0);
        assert!(f.predict(&[99.0]));
    }

    #[test]
    fn feature_importance_finds_the_signal() {
        // Only feature 0 carries label information.
        let x: Vec<Vec<f64>> = (0..120)
            .map(|i| vec![(i % 10) as f64, ((i * 13 + 5) % 7) as f64])
            .collect();
        let y: Vec<bool> = x.iter().map(|r| r[0] >= 5.0).collect();
        let f = RandomForest::fit(&x, &y, &ForestParams::default());
        let imp = f.feature_importance();
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(imp[0] > imp[1], "importances {imp:?}");
    }

    #[test]
    fn importance_of_stump_forest_is_zero() {
        let x = vec![vec![1.0], vec![1.0]];
        let y = vec![true, true];
        let f = RandomForest::fit(&x, &y, &ForestParams::default());
        assert_eq!(f.feature_importance(), vec![0.0]);
    }

    #[test]
    fn forest_len() {
        let (x, y) = separable(20);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestParams {
                n_trees: 5,
                ..Default::default()
            },
        );
        assert_eq!(f.len(), 5);
        assert!(!f.is_empty());
    }
}

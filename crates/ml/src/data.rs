//! Borrowed row-major training data.
//!
//! The verifier materializes candidate features into one contiguous
//! row-major `f64` buffer (mc-core's `FeatureMatrix`); [`RowsView`] is
//! the borrowed window mc-ml trains and predicts from — no per-row
//! allocations, no ownership transfer, prefetch-friendly sequential
//! scans. The [`Samples`] trait unifies that flat layout with the
//! classic `&[Vec<f64>]` API so both share one tree-growing core.

/// A borrowed row-major matrix: one contiguous buffer plus a stride.
///
/// Row `i` is `data[i * stride .. (i + 1) * stride]`.
#[derive(Debug, Clone, Copy)]
pub struct RowsView<'a> {
    data: &'a [f64],
    stride: usize,
}

impl<'a> RowsView<'a> {
    /// Wraps a flat buffer. Panics unless `data.len()` is a multiple of
    /// a positive `stride`.
    pub fn new(data: &'a [f64], stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert_eq!(
            data.len() % stride,
            0,
            "buffer length {} is not a multiple of stride {stride}",
            data.len()
        );
        RowsView { data, stride }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.stride
    }

    /// True if the view holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Features per row.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Row `i` as a feature slice.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [f64] {
        &self.data[i * self.stride..(i + 1) * self.stride]
    }
}

/// Internal accessor for training samples: features plus a label.
///
/// Tree growth only ever touches samples through this trait, so the same
/// (monomorphized) core serves owned `Vec<f64>` rows and index slices
/// into a shared flat matrix.
pub(crate) trait Samples {
    /// Number of samples.
    fn n_samples(&self) -> usize;
    /// Features per sample.
    fn n_features(&self) -> usize;
    /// Feature `f` of sample `s`.
    fn feature(&self, s: usize, f: usize) -> f64;
    /// Label of sample `s`.
    fn label(&self, s: usize) -> bool;
}

/// Owned-row training data (`RandomForest::fit`, `DecisionTree::fit`).
pub(crate) struct VecSamples<'a> {
    pub x: &'a [Vec<f64>],
    pub y: &'a [bool],
}

impl Samples for VecSamples<'_> {
    #[inline]
    fn n_samples(&self) -> usize {
        self.x.len()
    }

    #[inline]
    fn n_features(&self) -> usize {
        self.x.first().map_or(0, Vec::len)
    }

    #[inline]
    fn feature(&self, s: usize, f: usize) -> f64 {
        self.x[s][f]
    }

    #[inline]
    fn label(&self, s: usize) -> bool {
        self.y[s]
    }
}

/// Index-slice training data: sample `s` is row `idx[s]` of a shared
/// flat matrix, labeled `y[s]`. Bootstrap resampling duplicates indexes,
/// never rows.
pub(crate) struct MatrixSamples<'a> {
    pub rows: RowsView<'a>,
    pub idx: &'a [usize],
    pub y: &'a [bool],
}

impl Samples for MatrixSamples<'_> {
    #[inline]
    fn n_samples(&self) -> usize {
        self.idx.len()
    }

    #[inline]
    fn n_features(&self) -> usize {
        self.rows.stride()
    }

    #[inline]
    fn feature(&self, s: usize, f: usize) -> f64 {
        self.rows.row(self.idx[s])[f]
    }

    #[inline]
    fn label(&self, s: usize) -> bool {
        self.y[s]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_view_slices_rows() {
        let buf = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let v = RowsView::new(&buf, 3);
        assert_eq!(v.len(), 2);
        assert_eq!(v.stride(), 3);
        assert!(!v.is_empty());
        assert_eq!(v.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(v.row(1), &[4.0, 5.0, 6.0]);
        let empty = RowsView::new(&[], 3);
        assert_eq!(empty.len(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "multiple of stride")]
    fn ragged_buffer_rejected() {
        let _ = RowsView::new(&[1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn matrix_samples_indirect_through_idx() {
        let buf = [0.0, 0.0, 1.0, 1.0, 2.0, 2.0];
        let rows = RowsView::new(&buf, 2);
        let idx = [2, 0, 2];
        let y = [true, false, true];
        let s = MatrixSamples {
            rows,
            idx: &idx,
            y: &y,
        };
        assert_eq!(s.n_samples(), 3);
        assert_eq!(s.n_features(), 2);
        assert_eq!(s.feature(0, 0), 2.0);
        assert_eq!(s.feature(1, 1), 0.0);
        assert!(s.label(2));
        assert!(!s.label(1));
    }
}

//! CART decision trees for binary classification.
//!
//! Trees split on `feature ≤ threshold` minimizing weighted Gini impurity.
//! At each split a random subset of features is considered (the random
//! forest's decorrelation device); single trees can pass
//! `features_per_split = all`.
//!
//! Training is generic over [`Samples`](crate::data::Samples): the same
//! growing core fits owned `Vec<f64>` rows and index slices into a shared
//! flat matrix (the forest's clone-free bootstrap path). Because splits
//! are only placed between *distinct* sorted feature values, a node's
//! subtree depends on the multiset of its samples, not their order — so
//! passing bootstrap picks directly as the root index list yields the
//! same tree as materializing the resampled rows.

use crate::data::{Samples, VecSamples};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Training hyperparameters for a single tree.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of features considered per split; `0` means all.
    pub features_per_split: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 8,
            min_samples_split: 2,
            features_per_split: 0,
        }
    }
}

/// Reusable per-worker buffers for tree growth: the feature-subset list
/// and the sorted `(value, label)` column. One scratch per fitting thread
/// keeps the hot refit loop allocation-free across nodes and trees.
#[derive(Debug, Default)]
pub(crate) struct TreeScratch {
    features: Vec<usize>,
    column: Vec<(f64, bool)>,
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        /// Fraction of positive training samples reaching this leaf.
        prob: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the left child (`feature ≤ threshold`) in `nodes`.
        left: usize,
        /// Index of the right child in `nodes`.
        right: usize,
    },
}

/// A trained binary decision tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

impl DecisionTree {
    /// Fits a tree on row-major features `x` and boolean labels `y`.
    ///
    /// `rng` drives feature subsampling. Panics if `x` and `y` have
    /// different lengths or `x` is empty.
    pub fn fit(x: &[Vec<f64>], y: &[bool], params: &TreeParams, rng: &mut StdRng) -> Self {
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        assert!(!x.is_empty(), "cannot fit a tree on zero samples");
        let idx: Vec<usize> = (0..x.len()).collect();
        Self::fit_samples(
            &VecSamples { x, y },
            idx,
            params,
            rng,
            &mut TreeScratch::default(),
        )
    }

    /// Fits a tree on the samples selected by `idx` (duplicates allowed —
    /// this is how bootstrap resampling enters without cloning rows).
    pub(crate) fn fit_samples<S: Samples>(
        samples: &S,
        idx: Vec<usize>,
        params: &TreeParams,
        rng: &mut StdRng,
        scratch: &mut TreeScratch,
    ) -> Self {
        assert!(!idx.is_empty(), "cannot fit a tree on zero samples");
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_features: samples.n_features(),
        };
        tree.grow(samples, idx, 0, params, rng, scratch);
        tree
    }

    /// Probability estimate that `sample` is positive (the positive
    /// fraction of its leaf).
    pub fn predict_proba(&self, sample: &[f64]) -> f64 {
        debug_assert_eq!(sample.len(), self.n_features);
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { prob } => return *prob,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if sample[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Hard classification: leaf probability > 0.5.
    pub fn predict(&self, sample: &[f64]) -> bool {
        self.predict_proba(sample) > 0.5
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of features the tree was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// How many internal nodes split on each feature (a cheap
    /// split-frequency importance signal; see
    /// [`crate::forest::RandomForest::feature_importance`]).
    pub fn split_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_features];
        for n in &self.nodes {
            if let Node::Split { feature, .. } = n {
                counts[*feature] += 1;
            }
        }
        counts
    }

    /// Grows the subtree for `idx`, returning its node index.
    fn grow<S: Samples>(
        &mut self,
        samples: &S,
        idx: Vec<usize>,
        depth: usize,
        params: &TreeParams,
        rng: &mut StdRng,
        scratch: &mut TreeScratch,
    ) -> usize {
        let positives = idx.iter().filter(|&&i| samples.label(i)).count();
        let prob = positives as f64 / idx.len() as f64;
        let pure = positives == 0 || positives == idx.len();
        if pure || depth >= params.max_depth || idx.len() < params.min_samples_split {
            self.nodes.push(Node::Leaf { prob });
            return self.nodes.len() - 1;
        }
        let Some((feature, threshold)) = self.best_split(samples, &idx, params, rng, scratch)
        else {
            self.nodes.push(Node::Leaf { prob });
            return self.nodes.len() - 1;
        };
        let (li, ri): (Vec<usize>, Vec<usize>) = idx
            .into_iter()
            .partition(|&i| samples.feature(i, feature) <= threshold);
        debug_assert!(!li.is_empty() && !ri.is_empty());
        // Reserve a slot for this split node before growing children.
        let at = self.nodes.len();
        self.nodes.push(Node::Leaf { prob }); // placeholder
        let left = self.grow(samples, li, depth + 1, params, rng, scratch);
        let right = self.grow(samples, ri, depth + 1, params, rng, scratch);
        self.nodes[at] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        at
    }

    /// The `(feature, threshold)` minimizing weighted Gini impurity over a
    /// random feature subset; `None` if no split separates the samples.
    fn best_split<S: Samples>(
        &self,
        samples: &S,
        idx: &[usize],
        params: &TreeParams,
        rng: &mut StdRng,
        scratch: &mut TreeScratch,
    ) -> Option<(usize, f64)> {
        let TreeScratch { features, column } = scratch;
        features.clear();
        features.extend(0..self.n_features);
        let take = if params.features_per_split == 0 {
            self.n_features
        } else {
            params.features_per_split.min(self.n_features)
        };
        if take < self.n_features {
            features.shuffle(rng);
            features.truncate(take);
        }

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gini)
        let total = idx.len() as f64;
        for &f in features.iter() {
            column.clear();
            column.extend(
                idx.iter()
                    .map(|&i| (samples.feature(i, f), samples.label(i))),
            );
            column.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
            let total_pos = column.iter().filter(|(_, l)| *l).count() as f64;
            let mut left_n = 0f64;
            let mut left_pos = 0f64;
            for w in 0..column.len() - 1 {
                left_n += 1.0;
                if column[w].1 {
                    left_pos += 1.0;
                }
                // Only split between distinct values.
                if column[w].0 == column[w + 1].0 {
                    continue;
                }
                let right_n = total - left_n;
                let right_pos = total_pos - left_pos;
                let gini = |n: f64, pos: f64| {
                    if n == 0.0 {
                        0.0
                    } else {
                        let p = pos / n;
                        2.0 * p * (1.0 - p)
                    }
                };
                let weighted = left_n / total * gini(left_n, left_pos)
                    + right_n / total * gini(right_n, right_pos);
                let threshold = (column[w].0 + column[w + 1].0) / 2.0;
                if best.as_ref().is_none_or(|&(_, _, g)| weighted < g - 1e-12) {
                    best = Some((f, threshold, weighted));
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn fits_a_linearly_separable_problem() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let y: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        let t = DecisionTree::fit(&x, &y, &TreeParams::default(), &mut rng());
        assert!(!t.predict(&[3.0]));
        assert!(t.predict(&[33.0]));
        assert_eq!(t.predict_proba(&[0.0]), 0.0);
        assert_eq!(t.predict_proba(&[39.0]), 1.0);
    }

    #[test]
    fn pure_node_is_a_single_leaf() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![true, true, true];
        let t = DecisionTree::fit(&x, &y, &TreeParams::default(), &mut rng());
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict_proba(&[0.0]), 1.0);
    }

    #[test]
    fn respects_max_depth() {
        // Alternating labels on one feature need many splits; depth 1
        // allows at most 3 nodes.
        let x: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64]).collect();
        let y: Vec<bool> = (0..16).map(|i| i % 2 == 0).collect();
        let params = TreeParams {
            max_depth: 1,
            ..TreeParams::default()
        };
        let t = DecisionTree::fit(&x, &y, &params, &mut rng());
        assert!(t.node_count() <= 3);
    }

    #[test]
    fn xor_needs_depth_two() {
        let x = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = vec![false, true, true, false];
        let t = DecisionTree::fit(&x, &y, &TreeParams::default(), &mut rng());
        for (xi, yi) in x.iter().zip(&y) {
            assert_eq!(t.predict(xi), *yi, "sample {xi:?}");
        }
    }

    #[test]
    fn identical_features_yield_leaf() {
        let x = vec![vec![5.0], vec![5.0], vec![5.0], vec![5.0]];
        let y = vec![true, false, true, false];
        let t = DecisionTree::fit(&x, &y, &TreeParams::default(), &mut rng());
        assert_eq!(t.node_count(), 1);
        assert!((t.predict_proba(&[5.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_training_set_panics() {
        let _ = DecisionTree::fit(&[], &[], &TreeParams::default(), &mut rng());
    }

    #[test]
    fn deterministic_given_seed() {
        let x: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 7) as f64, (i % 3) as f64])
            .collect();
        let y: Vec<bool> = (0..30).map(|i| i % 7 > 3).collect();
        let p = TreeParams {
            features_per_split: 1,
            ..TreeParams::default()
        };
        let t1 = DecisionTree::fit(&x, &y, &p, &mut StdRng::seed_from_u64(3));
        let t2 = DecisionTree::fit(&x, &y, &p, &mut StdRng::seed_from_u64(3));
        assert_eq!(t1, t2);
        for s in &x {
            assert_eq!(t1.predict_proba(s), t2.predict_proba(s));
        }
    }

    #[test]
    fn matrix_samples_match_owned_rows() {
        // The same data through the flat-matrix path (with an index
        // mapping that shuffles row storage order) must grow the same
        // tree as the owned-row path.
        use crate::data::{MatrixSamples, RowsView};
        let x: Vec<Vec<f64>> = (0..24)
            .map(|i| vec![(i % 5) as f64, ((i * 3) % 7) as f64])
            .collect();
        let y: Vec<bool> = (0..24).map(|i| (i % 5) >= 2).collect();
        let owned = DecisionTree::fit(&x, &y, &TreeParams::default(), &mut rng());

        // Store rows back-to-front in the flat buffer; idx maps sample
        // position to its storage row.
        let n = x.len();
        let mut buf = vec![0.0; n * 2];
        for (i, row) in x.iter().enumerate() {
            buf[(n - 1 - i) * 2..(n - i) * 2].copy_from_slice(row);
        }
        let idx: Vec<usize> = (0..n).map(|i| n - 1 - i).collect();
        let samples = MatrixSamples {
            rows: RowsView::new(&buf, 2),
            idx: &idx,
            y: &y,
        };
        let flat = DecisionTree::fit_samples(
            &samples,
            (0..n).collect(),
            &TreeParams::default(),
            &mut rng(),
            &mut TreeScratch::default(),
        );
        assert_eq!(owned, flat);
    }
}

#![warn(missing_docs)]

//! # mc-ml
//!
//! A small, dependency-light machine-learning substrate: CART decision
//! trees and random forests with bootstrap aggregation and per-split
//! feature subsampling.
//!
//! MatchCatcher's Match Verifier (§5 of the paper) trains a **random
//! forest** on user-labeled tuple pairs and ranks the remaining candidates
//! by *positive prediction confidence* — the fraction of trees voting
//! "match". Active learning additionally asks for the most *controversial*
//! candidates (confidence closest to 0.5). Both signals come from
//! [`RandomForest::confidence`].
//!
//! Everything is deterministic given a seed: bagging and feature sampling
//! draw from a caller-supplied [`rand::rngs::StdRng`] stream.

pub mod forest;
pub mod tree;

pub use forest::{ForestParams, RandomForest};
pub use tree::{DecisionTree, TreeParams};

#![warn(missing_docs)]

//! # mc-ml
//!
//! A small, dependency-light machine-learning substrate: CART decision
//! trees and random forests with bootstrap aggregation and per-split
//! feature subsampling.
//!
//! MatchCatcher's Match Verifier (§5 of the paper) trains a **random
//! forest** on user-labeled tuple pairs and ranks the remaining candidates
//! by *positive prediction confidence* — the fraction of trees voting
//! "match". Active learning additionally asks for the most *controversial*
//! candidates (confidence closest to 0.5). Both signals come from
//! [`RandomForest::confidence`].
//!
//! Everything is deterministic given a seed — including the parallel
//! paths. [`RandomForest::fit`] grows each tree from its own
//! [`StdRng`](rand::rngs::StdRng) seeded by a per-tree derivation of the
//! base seed, so the forest is bit-identical at any worker-thread count;
//! [`RandomForest::score_batch`] preserves row order across parallel
//! chunks. Training data can be owned `Vec<f64>` rows or a borrowed flat
//! row-major matrix ([`RowsView`]), into which bootstrap samples are
//! index lists rather than cloned rows.

pub mod data;
pub mod forest;
pub mod tree;

pub use data::RowsView;
pub use forest::{ForestParams, RandomForest};
pub use tree::{DecisionTree, TreeParams};

//! Deterministic word pools and synthetic word generation.
//!
//! Small hand-written pools cover domains where *shared* tokens drive
//! realistic near-misses (names, cities, brands); a syllable-based
//! generator extends pools deterministically for the large music/papers
//! profiles, where hundreds of thousands of distinct tokens are needed.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::RngExt as _;

/// First names; deliberately contains pairs with common short forms.
pub const FIRST_NAMES: &[&str] = &[
    "david",
    "dave",
    "daniel",
    "dan",
    "charles",
    "charlie",
    "joseph",
    "joe",
    "michael",
    "mike",
    "robert",
    "rob",
    "william",
    "will",
    "richard",
    "rick",
    "thomas",
    "tom",
    "james",
    "jim",
    "john",
    "jack",
    "steven",
    "steve",
    "edward",
    "ed",
    "anthony",
    "tony",
    "benjamin",
    "ben",
    "samuel",
    "sam",
    "alexander",
    "alex",
    "nicholas",
    "nick",
    "christopher",
    "chris",
    "katherine",
    "kate",
    "elizabeth",
    "liz",
    "jennifer",
    "jen",
    "margaret",
    "meg",
    "patricia",
    "pat",
    "susan",
    "sue",
    "deborah",
    "deb",
    "rebecca",
    "becky",
    "maria",
    "anna",
    "laura",
    "sarah",
    "emily",
    "olivia",
    "sophia",
    "hannah",
    "grace",
    "julia",
    "amy",
    "karen",
];

/// Common short form of a first name, if one exists in the pool.
pub fn nickname(first: &str) -> Option<&'static str> {
    const PAIRS: &[(&str, &str)] = &[
        ("david", "dave"),
        ("daniel", "dan"),
        ("charles", "charlie"),
        ("joseph", "joe"),
        ("michael", "mike"),
        ("robert", "rob"),
        ("william", "will"),
        ("richard", "rick"),
        ("thomas", "tom"),
        ("james", "jim"),
        ("john", "jack"),
        ("steven", "steve"),
        ("edward", "ed"),
        ("anthony", "tony"),
        ("benjamin", "ben"),
        ("samuel", "sam"),
        ("alexander", "alex"),
        ("nicholas", "nick"),
        ("christopher", "chris"),
        ("katherine", "kate"),
        ("elizabeth", "liz"),
        ("jennifer", "jen"),
        ("margaret", "meg"),
        ("patricia", "pat"),
        ("susan", "sue"),
        ("deborah", "deb"),
        ("rebecca", "becky"),
    ];
    PAIRS.iter().find(|(f, _)| *f == first).map(|(_, n)| *n)
}

/// Last names.
pub const LAST_NAMES: &[&str] = &[
    "smith",
    "johnson",
    "williams",
    "brown",
    "jones",
    "garcia",
    "miller",
    "davis",
    "rodriguez",
    "martinez",
    "hernandez",
    "lopez",
    "gonzalez",
    "wilson",
    "anderson",
    "thomas",
    "taylor",
    "moore",
    "jackson",
    "martin",
    "lee",
    "perez",
    "thompson",
    "white",
    "harris",
    "sanchez",
    "clark",
    "ramirez",
    "lewis",
    "robinson",
    "walker",
    "young",
    "allen",
    "king",
    "wright",
    "scott",
    "torres",
    "nguyen",
    "hill",
    "flores",
    "green",
    "adams",
    "nelson",
    "baker",
    "hall",
    "rivera",
    "campbell",
    "mitchell",
    "carter",
    "roberts",
    "gomez",
    "phillips",
    "evans",
    "turner",
    "diaz",
    "parker",
    "cruz",
    "edwards",
    "collins",
    "reyes",
    "stewart",
    "morris",
    "morales",
    "murphy",
    "cook",
    "rogers",
    "gutierrez",
    "ortiz",
    "morgan",
    "cooper",
    "peterson",
    "bailey",
    "reed",
    "kelly",
    "howard",
    "ramos",
    "kim",
    "cox",
    "ward",
    "richardson",
    "watson",
];

/// US cities with well-known short forms (full name, abbreviation).
/// The abbreviation channel is what breaks `a.City = b.City` hash blockers
/// in the paper's running example.
pub const CITIES: &[(&str, &str)] = &[
    ("new york", "ny"),
    ("new york city", "nyc"),
    ("los angeles", "la"),
    ("san francisco", "sf"),
    ("philadelphia", "philly"),
    ("las vegas", "vegas"),
    ("washington", "dc"),
    ("atlanta", "atl"),
    ("chicago", "chi"),
    ("boston", "bos"),
    ("houston", "hou"),
    ("phoenix", "phx"),
    ("san antonio", "sa"),
    ("san diego", "sd"),
    ("dallas", "dfw"),
    ("san jose", "sj"),
    ("austin", "atx"),
    ("jacksonville", "jax"),
    ("columbus", "cbus"),
    ("charlotte", "clt"),
    ("indianapolis", "indy"),
    ("seattle", "sea"),
    ("denver", "den"),
    ("nashville", "nash"),
    ("oklahoma city", "okc"),
    ("portland", "pdx"),
    ("memphis", "mem"),
    ("louisville", "lou"),
    ("baltimore", "bmore"),
    ("milwaukee", "mke"),
    ("albuquerque", "abq"),
    ("tucson", "tus"),
    ("fresno", "fres"),
    ("sacramento", "sac"),
    ("kansas city", "kc"),
    ("miami", "mia"),
    ("tampa", "tpa"),
    ("new orleans", "nola"),
    ("minneapolis", "mpls"),
    ("cleveland", "cle"),
    ("pittsburgh", "pit"),
    ("cincinnati", "cincy"),
    ("saint louis", "stl"),
    ("salt lake city", "slc"),
    ("detroit", "det"),
    ("buffalo", "buf"),
    ("richmond", "rva"),
    ("orlando", "orl"),
    ("raleigh", "rdu"),
    ("omaha", "oma"),
];

/// US states (full name, postal code).
pub const STATES: &[(&str, &str)] = &[
    ("california", "ca"),
    ("texas", "tx"),
    ("florida", "fl"),
    ("new york", "ny"),
    ("pennsylvania", "pa"),
    ("illinois", "il"),
    ("ohio", "oh"),
    ("georgia", "ga"),
    ("north carolina", "nc"),
    ("michigan", "mi"),
    ("new jersey", "nj"),
    ("virginia", "va"),
    ("washington", "wa"),
    ("arizona", "az"),
    ("massachusetts", "ma"),
    ("tennessee", "tn"),
    ("indiana", "in"),
    ("missouri", "mo"),
    ("maryland", "md"),
    ("wisconsin", "wi"),
    ("colorado", "co"),
    ("minnesota", "mn"),
    ("south carolina", "sc"),
    ("alabama", "al"),
    ("louisiana", "la"),
    ("kentucky", "ky"),
    ("oregon", "or"),
    ("oklahoma", "ok"),
    ("connecticut", "ct"),
    ("utah", "ut"),
    ("iowa", "ia"),
    ("nevada", "nv"),
    ("arkansas", "ar"),
    ("mississippi", "ms"),
    ("kansas", "ks"),
    ("new mexico", "nm"),
    ("nebraska", "ne"),
    ("idaho", "id"),
    ("west virginia", "wv"),
    ("hawaii", "hi"),
    ("new hampshire", "nh"),
    ("maine", "me"),
    ("montana", "mt"),
    ("rhode island", "ri"),
    ("delaware", "de"),
    ("south dakota", "sd"),
    ("north dakota", "nd"),
    ("alaska", "ak"),
    ("vermont", "vt"),
    ("wyoming", "wy"),
];

/// Software/electronics brands with common variants. The variant channel
/// models "different words for the same brand" (Table 4, W-A row).
pub const BRANDS: &[(&str, &str)] = &[
    ("microsoft", "ms"),
    ("hewlett packard", "hp"),
    ("international business machines", "ibm"),
    ("apple", "apple inc"),
    ("adobe", "adobe systems"),
    ("symantec", "symantec corp"),
    ("intuit", "intuit inc"),
    ("autodesk", "autodesk inc"),
    ("corel", "corel corp"),
    ("mcafee", "mc afee"),
    ("sony", "sony electronics"),
    ("samsung", "samsung electronics"),
    ("panasonic", "panasonic corp"),
    ("toshiba", "toshiba america"),
    ("canon", "canon usa"),
    ("nikon", "nikon inc"),
    ("logitech", "logitech intl"),
    ("belkin", "belkin intl"),
    ("netgear", "net gear"),
    ("linksys", "link sys"),
    ("garmin", "garmin intl"),
    ("sandisk", "san disk"),
    ("kingston", "kingston tech"),
    ("seagate", "seagate tech"),
    ("philips", "philips electronics"),
    ("sharp", "sharp electronics"),
    ("vtech", "v tech"),
    ("kodak", "eastman kodak"),
    ("olympus", "olympus america"),
    ("casio", "casio computer"),
];

/// Product line nouns for software titles.
pub const SOFTWARE_NOUNS: &[&str] = &[
    "office",
    "studio",
    "suite",
    "manager",
    "designer",
    "toolkit",
    "server",
    "professional",
    "creator",
    "publisher",
    "accounting",
    "antivirus",
    "firewall",
    "backup",
    "recovery",
    "encyclopedia",
    "dictionary",
    "tutor",
    "trainer",
    "simulator",
    "editor",
    "converter",
    "organizer",
    "planner",
    "calendar",
    "mailer",
    "browser",
    "player",
    "burner",
    "scanner",
];

/// Qualifier words for product titles.
pub const PRODUCT_QUALIFIERS: &[&str] = &[
    "deluxe",
    "premium",
    "standard",
    "home",
    "enterprise",
    "ultimate",
    "basic",
    "plus",
    "pro",
    "express",
    "portable",
    "wireless",
    "digital",
    "compact",
    "advanced",
    "classic",
    "platinum",
    "gold",
    "limited",
    "academic",
    "upgrade",
    "edition",
    "bundle",
    "2005",
    "2006",
    "2007",
    "2008",
    "v2",
    "v3",
    "xl",
    "mini",
];

/// Electronics nouns for the Walmart-Amazon profile.
pub const ELECTRONICS_NOUNS: &[&str] = &[
    "laptop",
    "notebook",
    "camera",
    "camcorder",
    "television",
    "monitor",
    "printer",
    "router",
    "keyboard",
    "mouse",
    "headphones",
    "speakers",
    "tablet",
    "projector",
    "microphone",
    "charger",
    "adapter",
    "battery",
    "cable",
    "dock",
    "drive",
    "memory",
    "card",
    "case",
    "stand",
    "mount",
    "remote",
    "receiver",
    "subwoofer",
    "soundbar",
    "webcam",
    "scanner",
];

/// Academic title vocabulary for the ACM-DBLP / Papers profiles.
pub const PAPER_TOPIC_WORDS: &[&str] = &[
    "query",
    "database",
    "distributed",
    "parallel",
    "optimization",
    "indexing",
    "transaction",
    "concurrency",
    "recovery",
    "stream",
    "graph",
    "mining",
    "learning",
    "classification",
    "clustering",
    "integration",
    "warehouse",
    "schema",
    "semantic",
    "relational",
    "spatial",
    "temporal",
    "probabilistic",
    "approximate",
    "adaptive",
    "scalable",
    "efficient",
    "dynamic",
    "incremental",
    "secure",
    "private",
    "crowdsourced",
    "interactive",
    "declarative",
    "similarity",
    "matching",
    "entity",
    "resolution",
    "deduplication",
    "blocking",
    "sampling",
    "estimation",
    "caching",
    "partitioning",
    "replication",
    "consistency",
    "availability",
    "storage",
    "memory",
    "cache",
    "compression",
    "encoding",
    "hashing",
    "sketching",
    "joins",
    "aggregation",
    "ranking",
    "keyword",
    "search",
    "retrieval",
    "recommendation",
    "workflow",
    "provenance",
    "versioning",
    "evolution",
    "benchmark",
    "evaluation",
    "processing",
];

/// Connective words for paper titles.
pub const PAPER_GLUE_WORDS: &[&str] = &[
    "for", "with", "over", "in", "using", "towards", "beyond", "via", "under", "on",
];

/// Publication venues (ACM-style vs DBLP-style naming handled in noise).
pub const VENUES: &[&str] = &[
    "sigmod", "vldb", "icde", "edbt", "cidr", "pods", "kdd", "icdm", "sdm", "wsdm", "www", "cikm",
    "sigir", "aaai", "ijcai", "icml", "nips", "socc", "sosp", "osdi",
];

/// Restaurant cuisine types.
pub const CUISINES: &[&str] = &[
    "american",
    "italian",
    "french",
    "chinese",
    "japanese",
    "mexican",
    "thai",
    "indian",
    "mediterranean",
    "greek",
    "spanish",
    "korean",
    "vietnamese",
    "cajun",
    "seafood",
    "steakhouse",
    "barbecue",
    "pizza",
    "deli",
    "diner",
    "bistro",
    "cafe",
    "bakery",
    "fusion",
    "vegetarian",
];

/// Restaurant name building blocks.
pub const RESTAURANT_WORDS: &[&str] = &[
    "golden", "silver", "blue", "red", "royal", "grand", "little", "old", "new", "corner",
    "garden", "house", "kitchen", "table", "grill", "tavern", "palace", "villa", "terrace",
    "harbor", "lake", "river", "hill", "park", "plaza", "star", "crown", "olive", "lemon",
    "pepper", "basil", "saffron", "ginger", "maple", "cedar", "willow",
];

/// Street suffixes for addresses.
pub const STREET_SUFFIXES: &[&str] = &[
    "st", "ave", "blvd", "rd", "ln", "dr", "way", "pl", "ct", "sq",
];

/// Expanded forms of street suffixes ("st" → "street"), the address
/// normalization problem of Table 4 (F-Z row).
pub fn street_suffix_long(short: &str) -> &'static str {
    match short {
        "st" => "street",
        "ave" => "avenue",
        "blvd" => "boulevard",
        "rd" => "road",
        "ln" => "lane",
        "dr" => "drive",
        "way" => "way",
        "pl" => "place",
        "ct" => "court",
        "sq" => "square",
        _ => "street",
    }
}

/// Music genres.
pub const GENRES: &[&str] = &[
    "rock",
    "pop",
    "jazz",
    "blues",
    "country",
    "folk",
    "electronic",
    "hiphop",
    "classical",
    "reggae",
    "metal",
    "punk",
    "soul",
    "funk",
    "disco",
    "ambient",
    "indie",
    "latin",
];

/// Generic words used to compose song and album titles.
pub const SONG_WORDS: &[&str] = &[
    "love",
    "night",
    "day",
    "heart",
    "dream",
    "fire",
    "rain",
    "sun",
    "moon",
    "star",
    "road",
    "home",
    "time",
    "life",
    "light",
    "dark",
    "blue",
    "golden",
    "broken",
    "lonely",
    "dancing",
    "running",
    "falling",
    "rising",
    "burning",
    "sweet",
    "wild",
    "free",
    "lost",
    "found",
    "forever",
    "tonight",
    "yesterday",
    "tomorrow",
    "summer",
    "winter",
    "river",
    "ocean",
    "mountain",
    "city",
    "highway",
    "train",
    "letter",
    "song",
    "story",
    "shadow",
    "mirror",
    "window",
    "door",
    "garden",
];

/// Consonant onsets for synthetic words.
const ONSETS: &[&str] = &[
    "b", "br", "c", "cl", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k", "l", "m", "n", "p", "pr",
    "r", "s", "st", "t", "tr", "v", "w", "z", "sh", "ch", "th",
];

/// Vowel nuclei for synthetic words.
const NUCLEI: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "ou", "io", "oa"];

/// Consonant codas for synthetic words.
const CODAS: &[&str] = &[
    "", "n", "r", "l", "s", "t", "m", "x", "nd", "rk", "ll", "ss",
];

/// A pronounceable synthetic word of 2–4 syllables, deterministic in the
/// RNG stream. Used to extend name pools for the large profiles.
pub fn synth_word(rng: &mut StdRng) -> String {
    let syllables = rng.random_range(2..=4usize);
    let mut w = String::new();
    for _ in 0..syllables {
        w.push_str(ONSETS.choose(rng).unwrap());
        w.push_str(NUCLEI.choose(rng).unwrap());
    }
    w.push_str(CODAS.choose(rng).unwrap());
    w
}

/// A pool of `n` distinct synthetic words.
pub fn synth_pool(rng: &mut StdRng, n: usize) -> Vec<String> {
    let mut seen = std::collections::HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let w = synth_word(rng);
        if seen.insert(w.clone()) {
            out.push(w);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn nicknames_resolve() {
        assert_eq!(nickname("david"), Some("dave"));
        assert_eq!(nickname("zzz"), None);
    }

    #[test]
    fn synth_words_are_nonempty_and_lowercase() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let w = synth_word(&mut rng);
            assert!(!w.is_empty());
            assert!(w.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn synth_pool_is_distinct_and_deterministic() {
        let p1 = synth_pool(&mut StdRng::seed_from_u64(9), 500);
        let p2 = synth_pool(&mut StdRng::seed_from_u64(9), 500);
        assert_eq!(p1, p2);
        let set: std::collections::HashSet<_> = p1.iter().collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn pools_are_nontrivial() {
        assert!(FIRST_NAMES.len() >= 50);
        assert!(LAST_NAMES.len() >= 60);
        assert!(CITIES.len() >= 40);
        assert!(STATES.len() == 50);
        assert!(BRANDS.len() >= 25);
        assert!(PAPER_TOPIC_WORDS.len() >= 50);
    }

    #[test]
    fn street_suffix_expansion() {
        assert_eq!(street_suffix_long("st"), "street");
        assert_eq!(street_suffix_long("blvd"), "boulevard");
        for s in STREET_SUFFIXES {
            assert!(!street_suffix_long(s).is_empty());
        }
    }
}

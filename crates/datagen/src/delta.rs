//! Randomized [`TableDelta`]s and killed-set perturbations, for
//! exercising the incremental debugging path (`DebugSession`) against
//! realistic edit batches.
//!
//! The generators draw all material from the table being edited: updates
//! splice attribute values between rows (simulating a data fix that makes
//! two records more or less alike), inserts mix-and-match columns of
//! existing rows, deletes tombstone random rows. That keeps the token
//! vocabulary realistic — an edit usually *moves* tokens between records
//! rather than inventing fresh ones, which is exactly the regime where
//! incremental top-k maintenance has to work hardest (scores of untouched
//! records' competitors shift).

use mc_table::hash::fx_set;
use mc_table::{PairSet, RowEdit, Table, TableDelta, Tuple, TupleId};
use rand::rngs::StdRng;
use rand::RngExt as _;

/// Size of a random delta: how many rows to update, delete, and insert.
#[derive(Debug, Clone, Copy)]
pub struct DeltaSpec {
    /// Rows to rewrite in place.
    pub updates: usize,
    /// Rows to tombstone.
    pub deletes: usize,
    /// Fresh rows to append.
    pub inserts: usize,
}

impl DeltaSpec {
    /// A spec touching roughly `frac` of `rows` (half updates, a quarter
    /// deletes, a quarter inserts), at least one update.
    pub fn fraction_of(rows: usize, frac: f64) -> Self {
        let touched = ((rows as f64 * frac) as usize).max(1);
        DeltaSpec {
            updates: (touched / 2).max(1),
            deletes: touched / 4,
            inserts: touched - (touched / 2).max(1) - touched / 4,
        }
    }
}

/// Draws a random valid [`TableDelta`] against `table`.
///
/// Update/delete targets are distinct (the delta validates cleanly);
/// updated rows get one attribute value spliced in from a random donor
/// row (or blanked, with small probability); inserted rows sample each
/// attribute independently from a random row. Deterministic in `rng`.
pub fn random_delta(table: &Table, spec: DeltaSpec, rng: &mut StdRng) -> TableDelta {
    let rows = table.len();
    assert!(rows > 0, "cannot edit an empty table");
    let n_attrs = table.schema().len();
    let want = (spec.updates + spec.deletes).min(rows);
    let mut targets = fx_set();
    let mut picked: Vec<TupleId> = Vec::with_capacity(want);
    while picked.len() < want {
        let id = rng.random_range(0..rows as u32);
        if targets.insert(id) {
            picked.push(id);
        }
    }
    let updates: Vec<RowEdit> = picked[..spec.updates.min(picked.len())]
        .iter()
        .map(|&id| {
            let mut tuple = table.tuple(id).clone();
            let attr = mc_table::AttrId(rng.random_range(0..n_attrs as u16));
            if rng.random_bool(0.1) {
                tuple.set(attr, None);
            } else {
                let donor = rng.random_range(0..rows as u32);
                let value = table.value(donor, attr).map(str::to_owned);
                tuple.set(attr, value);
            }
            RowEdit { id, tuple }
        })
        .collect();
    let deletes: Vec<TupleId> = picked[spec.updates.min(picked.len())..].to_vec();
    let inserts: Vec<Tuple> = (0..spec.inserts)
        .map(|_| {
            Tuple::new(
                (0..n_attrs)
                    .map(|a| {
                        let donor = rng.random_range(0..rows as u32);
                        table
                            .value(donor, mc_table::AttrId(a as u16))
                            .map(str::to_owned)
                    })
                    .collect(),
            )
        })
        .collect();
    TableDelta {
        updates,
        deletes,
        inserts,
    }
}

/// Perturbs a killed set: drops each existing pair with probability
/// `unkill_rate` and adds `kills` random fresh pairs over the id ranges
/// `n_a × n_b`. Deterministic in `rng`.
pub fn perturb_killed(
    killed: &PairSet,
    n_a: u32,
    n_b: u32,
    unkill_rate: f64,
    kills: usize,
    rng: &mut StdRng,
) -> PairSet {
    let mut out = PairSet::with_capacity(killed.len() + kills);
    for (a, b) in killed.iter() {
        if !rng.random_bool(unkill_rate) {
            out.insert(a, b);
        }
    }
    for _ in 0..kills {
        out.insert(rng.random_range(0..n_a), rng.random_range(0..n_b));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::DatasetProfile;
    use rand::SeedableRng;

    #[test]
    fn random_delta_validates_and_applies() {
        let ds = DatasetProfile::FodorsZagats.generate_scaled(5, 0.3);
        let mut rng = StdRng::seed_from_u64(42);
        let spec = DeltaSpec::fraction_of(ds.a.len(), 0.05);
        let delta = random_delta(&ds.a, spec, &mut rng);
        assert!(delta.validate(&ds.a).is_ok());
        let mut patched = ds.a.clone();
        let changed = delta.apply(&mut patched).unwrap();
        assert_eq!(changed.len(), delta.len());
        assert_eq!(patched.len(), ds.a.len() + delta.inserts.len());
    }

    #[test]
    fn perturb_killed_changes_membership() {
        let ds = DatasetProfile::FodorsZagats.generate_scaled(5, 0.3);
        let mut killed = PairSet::new();
        for i in 0..50u32 {
            killed.insert(i % ds.a.len() as u32, (i * 7) % ds.b.len() as u32);
        }
        let mut rng = StdRng::seed_from_u64(7);
        let nk = perturb_killed(
            &killed,
            ds.a.len() as u32,
            ds.b.len() as u32,
            0.3,
            20,
            &mut rng,
        );
        let dropped = killed.iter().filter(|&(a, b)| !nk.contains(a, b)).count();
        let added = nk.iter().filter(|&(a, b)| !killed.contains(a, b)).count();
        assert!(dropped > 0, "some pairs must be un-killed");
        assert!(added > 0, "some fresh pairs must be killed");
    }
}

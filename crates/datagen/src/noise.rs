//! Error injectors: the dirtiness channels that break blockers.
//!
//! Section 1 and Table 4 of the paper attribute killed-off matches to
//! concrete data problems — misspellings ("Altanta" vs "Atlanta"),
//! abbreviations ("New York" vs "NY"), missing values, brand-name
//! variants, attributes "sprinkled" into other attributes, subtitles
//! present in only one table, unnormalized addresses, casing differences,
//! and numeric drift. Each injector here implements one channel and
//! reports an [`ErrorKind`] tag so experiments can validate the debugger's
//! explanations against ground truth.

use mc_table::{AttrId, TupleId};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::RngExt as _;

/// Which table of the pair a perturbation was applied to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Left table A.
    A,
    /// Right table B.
    B,
}

/// The ground-truth class of an injected error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Character-level typo (insert/delete/substitute/transpose).
    Misspelling,
    /// Value replaced by a known short form ("new york" → "ny").
    Abbreviation,
    /// Value dropped entirely.
    MissingValue,
    /// Value replaced by a synonym/variant ("microsoft" → "ms").
    Synonym,
    /// Word order shuffled within the value.
    WordReorder,
    /// Random words dropped from a long value.
    TokenDrop,
    /// Extra qualifier/subtitle appended ("… : special edition").
    ExtraTokens,
    /// Another attribute's value concatenated into this one
    /// ("city sprinkled in name", Table 4 F-Z row).
    Sprinkle,
    /// Numeric value jittered (prices/years drift between sources).
    NumericJitter,
    /// Case/punctuation noise ("input tables are not lower-cased").
    CaseNoise,
    /// First name replaced by its nickname, or middle initial added.
    NameVariant,
}

impl ErrorKind {
    /// Human-readable label used in explanation reports.
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::Misspelling => "misspelling",
            ErrorKind::Abbreviation => "abbreviation",
            ErrorKind::MissingValue => "missing value",
            ErrorKind::Synonym => "synonym/variant",
            ErrorKind::WordReorder => "word reorder",
            ErrorKind::TokenDrop => "token drop",
            ErrorKind::ExtraTokens => "extra tokens",
            ErrorKind::Sprinkle => "attribute sprinkled into another",
            ErrorKind::NumericJitter => "numeric drift",
            ErrorKind::CaseNoise => "case/punctuation noise",
            ErrorKind::NameVariant => "name variant",
        }
    }
}

/// A perturbation that was actually applied during generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppliedError {
    /// Which table.
    pub side: Side,
    /// Which tuple.
    pub tuple: TupleId,
    /// Which attribute.
    pub attr: AttrId,
    /// Which error class.
    pub kind: ErrorKind,
}

/// Applies a random character-level typo: substitute, delete, insert, or
/// transpose one character. Returns `None` for empty input.
pub fn misspell(rng: &mut StdRng, s: &str) -> Option<String> {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return None;
    }
    let mut out = chars.clone();
    let pos = rng.random_range(0..out.len());
    match rng.random_range(0..4u8) {
        0 => {
            // substitute with a nearby letter
            out[pos] = random_letter(rng);
        }
        1 => {
            if out.len() > 1 {
                out.remove(pos);
            } else {
                out[pos] = random_letter(rng);
            }
        }
        2 => {
            out.insert(pos, random_letter(rng));
        }
        _ => {
            if pos + 1 < out.len() {
                out.swap(pos, pos + 1);
            } else if out.len() > 1 {
                out.swap(pos - 1, pos);
            } else {
                out[pos] = random_letter(rng);
            }
        }
    }
    Some(out.into_iter().collect())
}

fn random_letter(rng: &mut StdRng) -> char {
    (b'a' + rng.random_range(0..26u8)) as char
}

/// Shuffles word order (returns `None` for values with < 2 words).
pub fn reorder_words(rng: &mut StdRng, s: &str) -> Option<String> {
    let mut words: Vec<&str> = s.split_whitespace().collect();
    if words.len() < 2 {
        return None;
    }
    // Rotate by a random offset — preserves all tokens, changes order.
    let k = rng.random_range(1..words.len());
    words.rotate_left(k);
    Some(words.join(" "))
}

/// Drops up to `max_drop` random words from a multi-word value, keeping at
/// least one word. Returns `None` for single-word values.
pub fn drop_tokens(rng: &mut StdRng, s: &str, max_drop: usize) -> Option<String> {
    let mut words: Vec<&str> = s.split_whitespace().collect();
    if words.len() < 2 {
        return None;
    }
    let drops = rng.random_range(1..=max_drop.min(words.len() - 1));
    for _ in 0..drops {
        let i = rng.random_range(0..words.len());
        words.remove(i);
    }
    Some(words.join(" "))
}

/// Appends extra qualifier tokens (subtitle, edition, packaging noise).
pub fn extra_tokens(rng: &mut StdRng, s: &str) -> String {
    const EXTRAS: &[&str] = &[
        "special edition",
        "new version",
        "2 pack",
        "with bonus content",
        "original soundtrack",
        "remastered",
        "volume 2",
        "second edition",
        "collectors item",
        "oem package",
    ];
    format!("{s} {}", EXTRAS.choose(rng).unwrap())
}

/// Uppercases or title-cases the value and/or injects punctuation — the
/// "input tables are not lower-cased" problem of Table 4 (M1 row).
pub fn case_noise(rng: &mut StdRng, s: &str) -> String {
    match rng.random_range(0..3u8) {
        0 => s.to_uppercase(),
        1 => s
            .split_whitespace()
            .map(|w| {
                let mut c = w.chars();
                match c.next() {
                    Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                    None => String::new(),
                }
            })
            .collect::<Vec<_>>()
            .join(" "),
        _ => s.split_whitespace().collect::<Vec<_>>().join(", "),
    }
}

/// Jitters a numeric string by up to `rel` relative error (e.g. price
/// differences between stores) or ±`abs_max` absolutely (years).
pub fn numeric_jitter(rng: &mut StdRng, s: &str, rel: f64, abs_max: f64) -> Option<String> {
    let v: f64 = s.parse().ok()?;
    let jittered = if rel > 0.0 {
        let f = 1.0 + rng.random_range(-rel..=rel);
        v * f
    } else {
        v + rng.random_range(-abs_max..=abs_max).round()
    };
    if (jittered - v).abs() < f64::EPSILON {
        return None;
    }
    if s.contains('.') || rel > 0.0 {
        Some(format!("{jittered:.2}"))
    } else {
        Some(format!("{}", jittered as i64))
    }
}

/// Abbreviates a multi-word value to initial letters ("new york" → "ny"),
/// used when no curated abbreviation exists.
pub fn initialism(s: &str) -> Option<String> {
    let words: Vec<&str> = s.split_whitespace().collect();
    if words.len() < 2 {
        return None;
    }
    Some(words.iter().filter_map(|w| w.chars().next()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(123)
    }

    #[test]
    fn misspell_changes_string() {
        let mut r = rng();
        let mut changed = 0;
        for _ in 0..50 {
            let out = misspell(&mut r, "atlanta").unwrap();
            assert!(!out.is_empty());
            if out != "atlanta" {
                changed += 1;
            }
        }
        assert!(changed >= 45, "misspell almost always changes the input");
    }

    #[test]
    fn misspell_empty_is_none() {
        assert_eq!(misspell(&mut rng(), ""), None);
    }

    #[test]
    fn misspell_is_small_edit() {
        let mut r = rng();
        for _ in 0..100 {
            let out = misspell(&mut r, "welson").unwrap();
            assert!(mc_strsim_ed(&out, "welson") <= 2);
        }
    }

    // Local tiny edit distance to avoid a circular dev-dependency.
    fn mc_strsim_ed(a: &str, b: &str) -> usize {
        let a: Vec<char> = a.chars().collect();
        let b: Vec<char> = b.chars().collect();
        let mut prev: Vec<usize> = (0..=b.len()).collect();
        for (i, ca) in a.iter().enumerate() {
            let mut cur = vec![i + 1];
            for (j, cb) in b.iter().enumerate() {
                let cost = usize::from(ca != cb);
                cur.push((prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1));
            }
            prev = cur;
        }
        prev[b.len()]
    }

    #[test]
    fn reorder_preserves_tokens() {
        let mut r = rng();
        let out = reorder_words(&mut r, "alpha beta gamma").unwrap();
        let mut toks: Vec<&str> = out.split(' ').collect();
        toks.sort_unstable();
        assert_eq!(toks, vec!["alpha", "beta", "gamma"]);
        assert_ne!(out, "alpha beta gamma");
        assert_eq!(reorder_words(&mut r, "single"), None);
    }

    #[test]
    fn drop_tokens_keeps_at_least_one() {
        let mut r = rng();
        for _ in 0..50 {
            let out = drop_tokens(&mut r, "a b c d", 3).unwrap();
            assert!(!out.is_empty());
            assert!(out.split(' ').count() >= 1);
            assert!(out.split(' ').count() < 4);
        }
        assert_eq!(drop_tokens(&mut r, "one", 2), None);
    }

    #[test]
    fn extra_tokens_appends() {
        let out = extra_tokens(&mut rng(), "photoshop elements");
        assert!(out.starts_with("photoshop elements "));
        assert!(out.len() > "photoshop elements ".len());
    }

    #[test]
    fn case_noise_changes_presentation_not_letters() {
        let mut r = rng();
        for _ in 0..20 {
            let out = case_noise(&mut r, "dark side of the moon");
            let letters: String = out.chars().filter(|c| c.is_alphanumeric()).collect();
            assert_eq!(letters.to_lowercase(), "darksideofthemoon");
        }
    }

    #[test]
    fn numeric_jitter_moves_value() {
        let mut r = rng();
        let out = numeric_jitter(&mut r, "100.0", 0.2, 0.0).unwrap();
        let v: f64 = out.parse().unwrap();
        assert!((80.0 - 1e-9..=120.0 + 1e-9).contains(&v));
        assert_eq!(numeric_jitter(&mut r, "n/a", 0.2, 0.0), None);
    }

    #[test]
    fn year_jitter_is_integer() {
        let mut r = rng();
        for _ in 0..20 {
            if let Some(out) = numeric_jitter(&mut r, "2005", 0.0, 2.0) {
                let v: i64 = out.parse().unwrap();
                assert!((2003..=2007).contains(&v));
            }
        }
    }

    #[test]
    fn initialism_basic() {
        assert_eq!(initialism("new york"), Some("ny".into()));
        assert_eq!(initialism("salt lake city"), Some("slc".into()));
        assert_eq!(initialism("chicago"), None);
    }

    #[test]
    fn error_kind_labels_are_distinct() {
        use ErrorKind::*;
        let kinds = [
            Misspelling,
            Abbreviation,
            MissingValue,
            Synonym,
            WordReorder,
            TokenDrop,
            ExtraTokens,
            Sprinkle,
            NumericJitter,
            CaseNoise,
            NameVariant,
        ];
        let labels: std::collections::HashSet<_> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }
}

#![warn(missing_docs)]

//! # mc-datagen
//!
//! Synthetic entity-matching datasets with **known gold matches** and
//! **controlled dirtiness**.
//!
//! The MatchCatcher paper evaluates on seven real datasets (Table 1:
//! Amazon-Google, Walmart-Amazon, ACM-DBLP, Fodors-Zagats, Music1, Music2,
//! Papers). Those datasets are not redistributable, so this crate
//! synthesizes structurally equivalent table pairs:
//!
//! * [`entity`] — clean entity factories per domain (software products,
//!   electronics, papers, restaurants, songs);
//! * [`noise`] — the error classes the paper blames for low blocker recall
//!   (misspellings, abbreviations, missing values, synonyms/brand variants,
//!   attribute "sprinkling", subtitles, numeric jitter, case noise);
//! * [`perturb`] — per-attribute perturbation plans applied independently
//!   to the A-side and B-side projections of each entity;
//! * [`profiles`] — one [`profiles::DatasetProfile`] per paper dataset,
//!   matching its schema, table sizes, match count and average string
//!   lengths (scaled by a `scale` knob for the big ones);
//! * [`vocab`] — deterministic word pools and synthetic word generation.
//!
//! Every generated [`EmDataset`] carries an error log recording exactly
//! which perturbations were applied where, so experiments can check the
//! debugger's *explanations* (Table 4) against ground truth.

pub mod delta;
pub mod entity;
pub mod noise;
pub mod perturb;
pub mod profiles;
pub mod vocab;

use mc_table::{GoldMatches, Table};

/// A generated entity-matching task: two tables, the gold matches between
/// them, and the ground-truth error log.
#[derive(Debug)]
pub struct EmDataset {
    /// Left table.
    pub a: Table,
    /// Right table.
    pub b: Table,
    /// True matches between `a` and `b`.
    pub gold: GoldMatches,
    /// Every perturbation applied during generation, for explanation
    /// validation.
    pub errors: Vec<noise::AppliedError>,
    /// Profile name ("amazon-google", ...).
    pub name: String,
}

impl EmDataset {
    /// Summary statistics in the shape of the paper's Table 1 row:
    /// `(|A|, |B|, #matches, #attrs, avg_len_a, avg_len_b)` where the
    /// average lengths are mean characters per tuple (all attributes
    /// concatenated), matching the paper's "average length" column.
    pub fn table1_row(&self) -> (usize, usize, usize, usize, f64, f64) {
        (
            self.a.len(),
            self.b.len(),
            self.gold.len(),
            self.a.schema().len(),
            avg_tuple_chars(&self.a),
            avg_tuple_chars(&self.b),
        )
    }
}

fn avg_tuple_chars(t: &Table) -> f64 {
    if t.is_empty() {
        return 0.0;
    }
    let total: usize = t
        .iter()
        .map(|(_, tup)| {
            tup.iter()
                .map(|v| v.map_or(0, |s| s.len() + 1))
                .sum::<usize>()
        })
        .sum();
    total as f64 / t.len() as f64
}

//! Dataset profiles mirroring Table 1 of the paper.
//!
//! Each profile fixes a domain factory, table sizes, a gold match count,
//! and per-side perturbation plans whose error channels are the ones the
//! paper's experiments diagnose (Table 4's "blocker problems" column).
//! The big profiles (Music1/2, Papers) accept a `scale` factor so tests
//! can run small while benches sweep to the paper's sizes.

use crate::entity::{
    BigPaperFactory, ElectronicsFactory, EntityFactory, PaperFactory, RestaurantFactory,
    SoftwareProductFactory, SongFactory, ZipfFactory,
};
use crate::noise::{AppliedError, ErrorKind, Side};
use crate::perturb::{
    brand_variants, city_variants, cuisine_variants, street_variants, venue_variants, NoiseRule,
    PerturbPlan,
};
use crate::EmDataset;
use mc_table::{AttrId, GoldMatches, Table, Tuple};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

/// The seven evaluation datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetProfile {
    /// Software products; table A has long descriptions (1363 × 3226,
    /// 1300 matches, 5 attributes, avg lengths 205 / 38).
    AmazonGoogle,
    /// Electronics (2554 × 22074, 1154 matches, 7 attributes).
    WalmartAmazon,
    /// Bibliographic records, clean (2294 × 2616, 2224 matches, 5 attrs).
    AcmDblp,
    /// Restaurants (533 × 331, 112 matches, 7 attributes).
    FodorsZagats,
    /// Songs, 100K per table, 2978 matches, 8 attributes.
    Music1,
    /// Songs, 500K per table, 73646 matches.
    Music2,
    /// Large bibliographic records (456K × 628K, gold "unknown" in the
    /// paper; we generate it but experiments may ignore it).
    Papers,
    /// Synthetic scale profile: short records drawn from a Zipfian token
    /// distribution (60K × 60K at scale 1.0, and `generate_scaled` may go
    /// above 1.0). Not in the paper's Table 1 — it exists so scale
    /// benches can stress the joint SSJ stage with realistic token skew
    /// at 10⁵–10⁶ records.
    ZipfScale,
}

impl DatasetProfile {
    /// All profiles: Table 1 order, then the synthetic scale profile.
    pub const ALL: [DatasetProfile; 8] = [
        DatasetProfile::AmazonGoogle,
        DatasetProfile::WalmartAmazon,
        DatasetProfile::AcmDblp,
        DatasetProfile::FodorsZagats,
        DatasetProfile::Music1,
        DatasetProfile::Music2,
        DatasetProfile::Papers,
        DatasetProfile::ZipfScale,
    ];

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetProfile::AmazonGoogle => "amazon-google",
            DatasetProfile::WalmartAmazon => "walmart-amazon",
            DatasetProfile::AcmDblp => "acm-dblp",
            DatasetProfile::FodorsZagats => "fodors-zagats",
            DatasetProfile::Music1 => "music1",
            DatasetProfile::Music2 => "music2",
            DatasetProfile::Papers => "papers",
            DatasetProfile::ZipfScale => "zipf-scale",
        }
    }

    /// Paper table sizes `(|A|, |B|, #matches)` at scale 1.0.
    pub fn paper_sizes(self) -> (usize, usize, usize) {
        match self {
            DatasetProfile::AmazonGoogle => (1363, 3226, 1300),
            DatasetProfile::WalmartAmazon => (2554, 22074, 1154),
            DatasetProfile::AcmDblp => (2294, 2616, 2224),
            DatasetProfile::FodorsZagats => (533, 331, 112),
            DatasetProfile::Music1 => (100_000, 100_000, 2978),
            DatasetProfile::Music2 => (500_000, 500_000, 73_646),
            DatasetProfile::Papers => (455_996, 628_231, 60_000),
            DatasetProfile::ZipfScale => (60_000, 60_000, 6_000),
        }
    }

    /// Generates the dataset at full paper scale.
    pub fn generate(self, seed: u64) -> EmDataset {
        self.generate_scaled(seed, 1.0)
    }

    /// Generates the dataset with table sizes multiplied by `scale`
    /// (match count scales proportionally; minimums keep tiny scales
    /// usable). Scales above 1.0 grow the tables past the paper sizes —
    /// the match count keeps scaling proportionally, so scale benches can
    /// sweep the same profile from test-size to beyond-paper-size inputs.
    pub fn generate_scaled(self, seed: u64, scale: f64) -> EmDataset {
        assert!(scale > 0.0, "scale must be positive");
        let (na, nb, nm) = self.paper_sizes();
        let na = ((na as f64 * scale) as usize).max(20);
        let nb = ((nb as f64 * scale) as usize).max(20);
        let nm = ((nm as f64 * scale) as usize).max(10).min(na.min(nb));
        let mut rng = StdRng::seed_from_u64(seed ^ fx_mix(self as u64));
        let mut factory = self.factory(&mut rng, na + nb);
        let (plan_a, plan_b) = self.plans(&factory.schema());
        build_dataset(
            self.name(),
            factory.as_mut(),
            &plan_a,
            &plan_b,
            na,
            nb,
            nm,
            &mut rng,
        )
    }

    fn factory(self, rng: &mut StdRng, approx_rows: usize) -> Box<dyn EntityFactory> {
        match self {
            DatasetProfile::AmazonGoogle => Box::new(SoftwareProductFactory),
            DatasetProfile::WalmartAmazon => Box::new(ElectronicsFactory),
            DatasetProfile::AcmDblp => Box::new(PaperFactory::new(rng, 400)),
            DatasetProfile::FodorsZagats => Box::new(RestaurantFactory),
            DatasetProfile::Music1 | DatasetProfile::Music2 => {
                let artists = (approx_rows / 40).clamp(200, 20_000);
                let albums = (approx_rows / 25).clamp(200, 30_000);
                Box::new(SongFactory::new(rng, artists, albums))
            }
            DatasetProfile::Papers => {
                let extra = (approx_rows / 50).clamp(500, 20_000);
                Box::new(BigPaperFactory::new(rng, extra))
            }
            DatasetProfile::ZipfScale => {
                // Vocabulary grows with the table so up-scaling does not
                // collapse every record onto the same few tokens; the
                // exponent keeps the head heavy enough that the frequent
                // ranks matter (they are what the bitmap kernel targets).
                let vocab = (approx_rows / 4).clamp(1_000, 50_000);
                Box::new(ZipfFactory::new(rng, vocab, 1.07))
            }
        }
    }

    /// Per-side perturbation plans; attribute ids resolved by name so the
    /// plans stay readable.
    fn plans(self, schema: &mc_table::Schema) -> (PerturbPlan, PerturbPlan) {
        let id = |n: &str| schema.expect_id(n);
        match self {
            DatasetProfile::AmazonGoogle => {
                let a = PerturbPlan::new()
                    .rule(NoiseRule::new(id("title"), ErrorKind::ExtraTokens, 0.25))
                    .rule(NoiseRule::new(id("title"), ErrorKind::CaseNoise, 0.10))
                    .rule(
                        NoiseRule::new(id("manufacturer"), ErrorKind::Sprinkle, 0.15)
                            .with_aux(id("title")),
                    );
                let b = PerturbPlan::new()
                    .rule(
                        NoiseRule::new(id("title"), ErrorKind::TokenDrop, 0.30).with_magnitude(2.0),
                    )
                    .rule(NoiseRule::new(id("title"), ErrorKind::Misspelling, 0.08))
                    .rule(
                        NoiseRule::new(id("manufacturer"), ErrorKind::Synonym, 0.35)
                            .with_variants(brand_variants()),
                    )
                    .rule(NoiseRule::new(
                        id("manufacturer"),
                        ErrorKind::MissingValue,
                        0.25,
                    ))
                    .rule(
                        NoiseRule::new(id("price"), ErrorKind::NumericJitter, 0.50)
                            .with_magnitude(0.15),
                    )
                    .rule(NoiseRule::new(
                        id("description"),
                        ErrorKind::MissingValue,
                        0.55,
                    ))
                    .rule(
                        NoiseRule::new(id("description"), ErrorKind::TokenDrop, 0.40)
                            .with_magnitude(18.0),
                    );
                (a, b)
            }
            DatasetProfile::WalmartAmazon => {
                let a = PerturbPlan::new()
                    .rule(NoiseRule::new(
                        id("longdescr"),
                        ErrorKind::MissingValue,
                        0.70,
                    ))
                    .rule(
                        NoiseRule::new(id("brand"), ErrorKind::Synonym, 0.30)
                            .with_variants(brand_variants()),
                    )
                    .rule(NoiseRule::new(id("brand"), ErrorKind::MissingValue, 0.15))
                    .rule(
                        NoiseRule::new(id("title"), ErrorKind::TokenDrop, 0.25).with_magnitude(1.0),
                    )
                    .rule(NoiseRule::new(id("title"), ErrorKind::Misspelling, 0.05))
                    .rule(
                        NoiseRule::new(id("price"), ErrorKind::NumericJitter, 0.30)
                            .with_magnitude(0.20),
                    );
                let b = PerturbPlan::new()
                    .rule(NoiseRule::new(id("title"), ErrorKind::ExtraTokens, 0.30))
                    .rule(NoiseRule::new(id("title"), ErrorKind::CaseNoise, 0.10))
                    .rule(NoiseRule::new(id("modelno"), ErrorKind::Misspelling, 0.10));
                (a, b)
            }
            DatasetProfile::AcmDblp => {
                let a = PerturbPlan::new()
                    .rule(
                        NoiseRule::new(id("venue"), ErrorKind::Synonym, 0.50)
                            .with_variants(venue_variants()),
                    )
                    .rule(NoiseRule::new(id("authors"), ErrorKind::NameVariant, 0.30));
                let b = PerturbPlan::new()
                    .rule(NoiseRule::new(id("title"), ErrorKind::ExtraTokens, 0.15))
                    .rule(NoiseRule::new(id("title"), ErrorKind::Misspelling, 0.05))
                    .rule(
                        NoiseRule::new(id("authors"), ErrorKind::TokenDrop, 0.20)
                            .with_magnitude(1.0),
                    )
                    .rule(
                        NoiseRule::new(id("year"), ErrorKind::NumericJitter, 0.10)
                            .with_magnitude(1.0),
                    )
                    .rule(NoiseRule::new(id("pages"), ErrorKind::MissingValue, 0.30));
                (a, b)
            }
            DatasetProfile::FodorsZagats => {
                let a = PerturbPlan::new()
                    .rule(
                        NoiseRule::new(id("addr"), ErrorKind::Synonym, 0.40)
                            .with_variants(street_variants()),
                    )
                    .rule(
                        NoiseRule::new(id("type"), ErrorKind::Synonym, 0.30)
                            .with_variants(cuisine_variants()),
                    );
                let b = PerturbPlan::new()
                    .rule(
                        NoiseRule::new(id("city"), ErrorKind::Abbreviation, 0.20)
                            .with_variants(city_variants()),
                    )
                    .rule(
                        NoiseRule::new(id("name"), ErrorKind::Sprinkle, 0.10).with_aux(id("city")),
                    )
                    .rule(NoiseRule::new(id("name"), ErrorKind::Misspelling, 0.08))
                    .rule(NoiseRule::new(id("phone"), ErrorKind::Misspelling, 0.15));
                (a, b)
            }
            DatasetProfile::Music1 | DatasetProfile::Music2 => {
                let a = PerturbPlan::new()
                    .rule(NoiseRule::new(id("title"), ErrorKind::CaseNoise, 0.30))
                    .rule(NoiseRule::new(id("artist"), ErrorKind::CaseNoise, 0.20));
                let b = PerturbPlan::new()
                    .rule(NoiseRule::new(id("year"), ErrorKind::MissingValue, 0.30))
                    .rule(NoiseRule::new(id("title"), ErrorKind::Misspelling, 0.10))
                    .rule(NoiseRule::new(id("artist"), ErrorKind::Misspelling, 0.08))
                    .rule(
                        NoiseRule::new(id("album"), ErrorKind::TokenDrop, 0.15).with_magnitude(1.0),
                    )
                    .rule(
                        NoiseRule::new(id("year"), ErrorKind::NumericJitter, 0.10)
                            .with_magnitude(1.0),
                    );
                (a, b)
            }
            DatasetProfile::Papers => {
                let a = PerturbPlan::new()
                    .rule(NoiseRule::new(id("authors"), ErrorKind::NameVariant, 0.30))
                    .rule(
                        NoiseRule::new(id("venue"), ErrorKind::Synonym, 0.40)
                            .with_variants(venue_variants()),
                    );
                let b = PerturbPlan::new()
                    .rule(NoiseRule::new(id("title"), ErrorKind::ExtraTokens, 0.15))
                    .rule(NoiseRule::new(id("title"), ErrorKind::Misspelling, 0.07))
                    .rule(
                        NoiseRule::new(id("authors"), ErrorKind::TokenDrop, 0.25)
                            .with_magnitude(2.0),
                    )
                    .rule(
                        NoiseRule::new(id("year"), ErrorKind::NumericJitter, 0.10)
                            .with_magnitude(1.0),
                    )
                    .rule(NoiseRule::new(id("volume"), ErrorKind::MissingValue, 0.40))
                    .rule(NoiseRule::new(id("pages"), ErrorKind::MissingValue, 0.30));
                (a, b)
            }
            DatasetProfile::ZipfScale => {
                let a = PerturbPlan::new()
                    .rule(NoiseRule::new(id("name"), ErrorKind::CaseNoise, 0.15))
                    .rule(NoiseRule::new(id("tags"), ErrorKind::ExtraTokens, 0.20));
                let b = PerturbPlan::new()
                    .rule(
                        NoiseRule::new(id("name"), ErrorKind::TokenDrop, 0.25).with_magnitude(1.0),
                    )
                    .rule(NoiseRule::new(id("name"), ErrorKind::Misspelling, 0.08))
                    .rule(NoiseRule::new(
                        id("category"),
                        ErrorKind::MissingValue,
                        0.20,
                    ));
                (a, b)
            }
        }
    }
}

fn fx_mix(x: u64) -> u64 {
    x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31)
}

/// Assembles the dataset: generates `na + nb − nm` clean entities, the
/// first `nm` shared between both tables; projects each side through its
/// plan; shuffles row orders; records gold matches and the error log.
#[allow(clippy::too_many_arguments)]
fn build_dataset(
    name: &str,
    factory: &mut dyn EntityFactory,
    plan_a: &PerturbPlan,
    plan_b: &PerturbPlan,
    na: usize,
    nb: usize,
    nm: usize,
    rng: &mut StdRng,
) -> EmDataset {
    assert!(nm <= na && nm <= nb);
    let schema = Arc::new(factory.schema());
    let n_entities = na + nb - nm;
    let mut entities = Vec::with_capacity(n_entities);
    for _ in 0..n_entities {
        entities.push(factory.generate(rng));
    }

    // Row position permutations decouple tuple ids from entity order.
    let mut pos_a: Vec<u32> = (0..na as u32).collect();
    let mut pos_b: Vec<u32> = (0..nb as u32).collect();
    pos_a.shuffle(rng);
    pos_b.shuffle(rng);

    let mut rows_a: Vec<Option<Tuple>> = vec![None; na];
    let mut rows_b: Vec<Option<Tuple>> = vec![None; nb];
    let mut errors = Vec::new();

    // Table A holds entities [0, na); the first nm of those are matched.
    for (i, ent) in entities.iter().take(na).enumerate() {
        let mut fields = ent.fields.clone();
        let log = plan_a.apply(&mut fields, rng);
        let at = pos_a[i];
        for (attr, kind) in log {
            errors.push(AppliedError {
                side: Side::A,
                tuple: at,
                attr,
                kind,
            });
        }
        rows_a[at as usize] = Some(Tuple::new(fields));
    }
    // Table B holds the matched entities [0, nm) plus entities [na, …).
    let b_entity_indexes = (0..nm).chain(na..n_entities);
    for (j, ei) in b_entity_indexes.enumerate() {
        let mut fields = entities[ei].fields.clone();
        let log = plan_b.apply(&mut fields, rng);
        let at = pos_b[j];
        for (attr, kind) in log {
            errors.push(AppliedError {
                side: Side::B,
                tuple: at,
                attr,
                kind,
            });
        }
        rows_b[at as usize] = Some(Tuple::new(fields));
    }

    let table_a = Table::from_rows(
        format!("{name}-A"),
        Arc::clone(&schema),
        rows_a
            .into_iter()
            .map(|r| r.expect("all A rows filled"))
            .collect(),
    );
    let table_b = Table::from_rows(
        format!("{name}-B"),
        schema,
        rows_b
            .into_iter()
            .map(|r| r.expect("all B rows filled"))
            .collect(),
    );

    let mut gold = GoldMatches::new();
    for i in 0..nm {
        gold.insert(pos_a[i], pos_b[i]);
    }

    EmDataset {
        a: table_a,
        b: table_b,
        gold,
        errors,
        name: name.to_string(),
    }
}

/// Convenience accessor: the error kinds injected at a given tuple of a
/// given side (used to validate explanations).
pub fn errors_for(errors: &[AppliedError], side: Side, tuple: u32) -> Vec<(AttrId, ErrorKind)> {
    errors
        .iter()
        .filter(|e| e.side == side && e.tuple == tuple)
        .map(|e| (e.attr, e.kind))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_profiles_match_paper_sizes() {
        let ds = DatasetProfile::FodorsZagats.generate(1);
        let (a, b, m, attrs, _, _) = ds.table1_row();
        assert_eq!((a, b, m, attrs), (533, 331, 112, 7));
    }

    #[test]
    fn scaled_generation_shrinks() {
        let ds = DatasetProfile::Music1.generate_scaled(1, 0.01);
        assert_eq!(ds.a.len(), 1000);
        assert_eq!(ds.b.len(), 1000);
        assert!(ds.gold.len() >= 10);
    }

    #[test]
    fn scaled_generation_grows_past_paper_sizes() {
        let ds = DatasetProfile::FodorsZagats.generate_scaled(1, 2.0);
        assert_eq!(ds.a.len(), 1066);
        assert_eq!(ds.b.len(), 662);
        // Match count scales proportionally (clamped by min(|A|, |B|)).
        assert_eq!(ds.gold.len(), 224);
        for (a, b) in ds.gold.iter() {
            assert!((a as usize) < ds.a.len());
            assert!((b as usize) < ds.b.len());
        }
    }

    #[test]
    fn zipf_scale_tokens_are_skewed() {
        // The scale profile's whole point is a heavy-tailed token
        // distribution: the most frequent token should appear in far more
        // records than a uniform draw over the vocabulary would allow.
        let ds = DatasetProfile::ZipfScale.generate_scaled(4, 0.02);
        let mut df = std::collections::HashMap::new();
        let schema = ds.a.schema().clone();
        for id in ds.a.ids() {
            let mut seen = std::collections::HashSet::new();
            for attr in schema.attr_ids() {
                if let Some(v) = ds.a.value(id, attr) {
                    for w in v.split_whitespace() {
                        if seen.insert(w.to_string()) {
                            *df.entry(w.to_string()).or_insert(0usize) += 1;
                        }
                    }
                }
            }
        }
        let max_df = df.values().copied().max().unwrap_or(0);
        let n = ds.a.len();
        assert!(
            max_df * 20 >= n,
            "head token df {max_df} too small for {n} records"
        );
        assert!(df.len() > 100, "vocabulary collapsed: {} tokens", df.len());
    }

    #[test]
    fn gold_pairs_are_within_bounds() {
        let ds = DatasetProfile::AcmDblp.generate_scaled(3, 0.1);
        for (a, b) in ds.gold.iter() {
            assert!((a as usize) < ds.a.len());
            assert!((b as usize) < ds.b.len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let d1 = DatasetProfile::FodorsZagats.generate(7);
        let d2 = DatasetProfile::FodorsZagats.generate(7);
        assert_eq!(d1.gold.len(), d2.gold.len());
        for id in d1.a.ids() {
            assert_eq!(d1.a.tuple(id), d2.a.tuple(id));
        }
        assert_eq!(d1.errors.len(), d2.errors.len());
    }

    #[test]
    fn different_seeds_differ() {
        let d1 = DatasetProfile::FodorsZagats.generate(7);
        let d2 = DatasetProfile::FodorsZagats.generate(8);
        let same =
            d1.a.ids()
                .filter(|&i| d1.a.tuple(i) == d2.a.tuple(i))
                .count();
        assert!(same < d1.a.len() / 2, "seeds should change most rows");
    }

    #[test]
    fn matched_pairs_share_tokens() {
        // Matched tuples are dirty projections of one entity: their
        // concatenated strings should still overlap substantially more
        // often than random pairs.
        let ds = DatasetProfile::FodorsZagats.generate(11);
        let schema = ds.a.schema().clone();
        let concat = |t: &Table, id: u32| {
            schema
                .attr_ids()
                .filter_map(|attr| t.value(id, attr))
                .collect::<Vec<_>>()
                .join(" ")
                .to_lowercase()
        };
        let mut similar = 0;
        let mut total = 0;
        for (a, b) in ds.gold.iter() {
            let sa = concat(&ds.a, a);
            let sb = concat(&ds.b, b);
            let wa: std::collections::HashSet<&str> = sa.split_whitespace().collect();
            let wb: std::collections::HashSet<&str> = sb.split_whitespace().collect();
            let inter = wa.intersection(&wb).count();
            if inter * 2 >= wa.len().min(wb.len()) {
                similar += 1;
            }
            total += 1;
        }
        assert!(
            similar as f64 / total as f64 > 0.8,
            "only {similar}/{total} matched pairs look similar"
        );
    }

    #[test]
    fn error_log_references_valid_tuples() {
        let ds = DatasetProfile::AmazonGoogle.generate_scaled(5, 0.2);
        assert!(!ds.errors.is_empty());
        for e in &ds.errors {
            let t = match e.side {
                Side::A => &ds.a,
                Side::B => &ds.b,
            };
            assert!((e.tuple as usize) < t.len());
            assert!(e.attr.index() < t.schema().len());
        }
    }

    #[test]
    fn errors_for_filters() {
        let ds = DatasetProfile::AmazonGoogle.generate_scaled(5, 0.2);
        let e0 = &ds.errors[0];
        let found = errors_for(&ds.errors, e0.side, e0.tuple);
        assert!(found.contains(&(e0.attr, e0.kind)));
    }

    #[test]
    fn all_profiles_generate_small() {
        for p in DatasetProfile::ALL {
            let ds = p.generate_scaled(2, 0.02);
            assert!(!ds.a.is_empty(), "{}", p.name());
            assert!(!ds.b.is_empty());
            assert!(ds.gold.len() >= 10);
            assert_eq!(ds.a.schema().len(), ds.b.schema().len());
        }
    }

    #[test]
    fn amazon_google_asymmetry() {
        // Table A keeps long descriptions; B mostly loses them, so A's
        // average tuple length should be clearly larger (205 vs 38 in the
        // paper).
        let ds = DatasetProfile::AmazonGoogle.generate_scaled(9, 0.3);
        let (_, _, _, _, la, lb) = ds.table1_row();
        assert!(la > lb * 1.5, "A avg {la:.0} should exceed B avg {lb:.0}");
    }
}

//! Perturbation plans: per-attribute noise schedules.
//!
//! A [`PerturbPlan`] lists [`NoiseRule`]s — `(attribute, error kind,
//! rate)` triples, optionally with a variant map (curated abbreviations /
//! brand synonyms) or an auxiliary attribute (for sprinkling). Each table
//! side of a profile gets its own plan; a matched entity is projected
//! through both, so the textual gap between its A-tuple and B-tuple is
//! the union of both sides' noise.

use crate::noise::{self, ErrorKind};
use crate::vocab;
use mc_table::hash::FxHashMap;
use mc_table::AttrId;
use rand::rngs::StdRng;
use rand::RngExt as _;
use std::sync::Arc;

/// One noise channel applied to one attribute with a given probability.
#[derive(Debug, Clone)]
pub struct NoiseRule {
    /// Target attribute.
    pub attr: AttrId,
    /// Error class to inject.
    pub kind: ErrorKind,
    /// Per-tuple application probability in `[0, 1]`.
    pub rate: f64,
    /// Kind-specific magnitude: for [`ErrorKind::TokenDrop`] the maximum
    /// words dropped; for [`ErrorKind::NumericJitter`] the relative error
    /// if `< 1.0`, otherwise the absolute half-range.
    pub magnitude: f64,
    /// Curated value → variant map for [`ErrorKind::Abbreviation`] and
    /// [`ErrorKind::Synonym`] (lowercased keys). Falls back to
    /// [`noise::initialism`] for abbreviations when absent.
    pub variants: Option<Arc<FxHashMap<String, String>>>,
    /// Source attribute for [`ErrorKind::Sprinkle`].
    pub aux_attr: Option<AttrId>,
}

impl NoiseRule {
    /// A rule with default magnitude and no variant map.
    pub fn new(attr: AttrId, kind: ErrorKind, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        NoiseRule {
            attr,
            kind,
            rate,
            magnitude: 2.0,
            variants: None,
            aux_attr: None,
        }
    }

    /// Sets the kind-specific magnitude.
    pub fn with_magnitude(mut self, m: f64) -> Self {
        self.magnitude = m;
        self
    }

    /// Attaches a variant map.
    pub fn with_variants(mut self, map: Arc<FxHashMap<String, String>>) -> Self {
        self.variants = Some(map);
        self
    }

    /// Sets the sprinkle source attribute.
    pub fn with_aux(mut self, attr: AttrId) -> Self {
        self.aux_attr = Some(attr);
        self
    }
}

/// An ordered list of noise rules for one table side.
#[derive(Debug, Clone, Default)]
pub struct PerturbPlan {
    rules: Vec<NoiseRule>,
}

impl PerturbPlan {
    /// An empty (no-op) plan.
    pub fn new() -> Self {
        PerturbPlan::default()
    }

    /// Appends a rule (builder style).
    pub fn rule(mut self, r: NoiseRule) -> Self {
        self.rules.push(r);
        self
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Applies the plan to a tuple's fields in rule order, returning the
    /// `(attribute, kind)` of every perturbation actually applied.
    pub fn apply(
        &self,
        fields: &mut [Option<String>],
        rng: &mut StdRng,
    ) -> Vec<(AttrId, ErrorKind)> {
        let mut applied = Vec::new();
        for r in &self.rules {
            if !rng.random_bool(r.rate) {
                continue;
            }
            if apply_rule(r, fields, rng) {
                applied.push((r.attr, r.kind));
            }
        }
        applied
    }
}

/// Applies one rule; returns whether the tuple actually changed.
fn apply_rule(r: &NoiseRule, fields: &mut [Option<String>], rng: &mut StdRng) -> bool {
    let idx = r.attr.index();
    match r.kind {
        ErrorKind::MissingValue => {
            if fields[idx].is_some() {
                fields[idx] = None;
                true
            } else {
                false
            }
        }
        ErrorKind::Sprinkle => {
            let Some(aux) = r.aux_attr else { return false };
            let Some(extra) = fields[aux.index()].clone() else {
                return false;
            };
            let Some(v) = fields[idx].as_mut() else {
                return false;
            };
            v.push(' ');
            v.push_str(&extra);
            // Half the time the source column keeps its value too;
            // otherwise the information only survives inside the target.
            if rng.random_bool(0.5) {
                fields[aux.index()] = None;
            }
            true
        }
        _ => {
            let Some(v) = fields[idx].as_ref() else {
                return false;
            };
            let new = mutate_value(r, v, rng);
            match new {
                Some(n) if &n != v => {
                    fields[idx] = Some(n);
                    true
                }
                _ => false,
            }
        }
    }
}

fn mutate_value(r: &NoiseRule, v: &str, rng: &mut StdRng) -> Option<String> {
    match r.kind {
        ErrorKind::Misspelling => noise::misspell(rng, v),
        ErrorKind::Abbreviation => {
            if let Some(map) = &r.variants {
                if let Some(short) = map.get(&v.to_ascii_lowercase()) {
                    return Some(short.clone());
                }
            }
            noise::initialism(v)
        }
        ErrorKind::Synonym => {
            let map = r.variants.as_ref()?;
            // Whole-value lookup first ("microsoft" → "ms") ...
            if let Some(var) = map.get(&v.to_ascii_lowercase()) {
                return Some(var.clone());
            }
            // ... then word-level replacement ("golden st" → "golden
            // street", "microsoft office" → "ms office").
            let mut words: Vec<String> = v.split_whitespace().map(|w| w.to_string()).collect();
            for w in words.iter_mut() {
                if let Some(var) = map.get(&w.to_ascii_lowercase()) {
                    *w = var.clone();
                    return Some(words.join(" "));
                }
            }
            None
        }
        ErrorKind::WordReorder => noise::reorder_words(rng, v),
        ErrorKind::TokenDrop => noise::drop_tokens(rng, v, r.magnitude.max(1.0) as usize),
        ErrorKind::ExtraTokens => Some(noise::extra_tokens(rng, v)),
        ErrorKind::CaseNoise => Some(noise::case_noise(rng, v)),
        ErrorKind::NumericJitter => {
            if r.magnitude < 1.0 {
                noise::numeric_jitter(rng, v, r.magnitude, 0.0)
            } else {
                noise::numeric_jitter(rng, v, 0.0, r.magnitude)
            }
        }
        ErrorKind::NameVariant => name_variant(rng, v),
        ErrorKind::MissingValue | ErrorKind::Sprinkle => unreachable!("handled in apply_rule"),
    }
}

/// Swaps the first word for its nickname if one exists, otherwise inserts
/// a middle initial ("bryan lee" → "bryan m lee").
fn name_variant(rng: &mut StdRng, v: &str) -> Option<String> {
    let words: Vec<&str> = v.split_whitespace().collect();
    if words.is_empty() {
        return None;
    }
    if let Some(nick) = vocab::nickname(words[0]) {
        let mut out = vec![nick];
        out.extend(&words[1..]);
        return Some(out.join(" "));
    }
    if words.len() >= 2 {
        let initial = ((b'a' + rng.random_range(0..26u8)) as char).to_string();
        let mut out = vec![words[0], &initial];
        out.extend(&words[1..]);
        return Some(out.join(" "));
    }
    None
}

/// The curated city-abbreviation map as a variant table.
pub fn city_variants() -> Arc<FxHashMap<String, String>> {
    let mut m = FxHashMap::default();
    for (full, short) in vocab::CITIES {
        m.insert(full.to_string(), short.to_string());
    }
    Arc::new(m)
}

/// The curated brand-variant map.
pub fn brand_variants() -> Arc<FxHashMap<String, String>> {
    let mut m = FxHashMap::default();
    for (full, var) in vocab::BRANDS {
        m.insert(full.to_string(), var.to_string());
    }
    Arc::new(m)
}

/// State name → postal code.
pub fn state_variants() -> Arc<FxHashMap<String, String>> {
    let mut m = FxHashMap::default();
    for (full, code) in vocab::STATES {
        m.insert(full.to_string(), code.to_string());
    }
    Arc::new(m)
}

/// Venue short name → expanded conference name (the ACM vs DBLP naming
/// difference).
pub fn venue_variants() -> Arc<FxHashMap<String, String>> {
    let mut m = FxHashMap::default();
    for v in vocab::VENUES {
        m.insert(v.to_string(), format!("proceedings of {v} conference"));
    }
    Arc::new(m)
}

/// Street-suffix expansions ("st" → "street"); word-level synonym rules
/// use this to model unnormalized addresses (Table 4, F-Z row).
pub fn street_variants() -> Arc<FxHashMap<String, String>> {
    let mut m = FxHashMap::default();
    for s in vocab::STREET_SUFFIXES {
        m.insert(s.to_string(), vocab::street_suffix_long(s).to_string());
    }
    Arc::new(m)
}

/// Cuisine-description variants ("different descriptions for attribute
/// type", Table 4 F-Z row).
pub fn cuisine_variants() -> Arc<FxHashMap<String, String>> {
    let mut m = FxHashMap::default();
    for (a, b) in [
        ("barbecue", "bbq"),
        ("american", "american traditional"),
        ("italian", "trattoria italian"),
        ("french", "french bistro"),
        ("japanese", "sushi japanese"),
        ("mexican", "tex mex"),
        ("steakhouse", "steak house"),
        ("mediterranean", "med"),
        ("vegetarian", "veggie"),
        ("seafood", "fish seafood"),
    ] {
        m.insert(a.to_string(), b.to_string());
    }
    Arc::new(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    fn fields(vals: &[&str]) -> Vec<Option<String>> {
        vals.iter().map(|v| Some(v.to_string())).collect()
    }

    #[test]
    fn rate_one_always_applies() {
        let plan = PerturbPlan::new().rule(NoiseRule::new(AttrId(0), ErrorKind::MissingValue, 1.0));
        let mut f = fields(&["x", "y"]);
        let log = plan.apply(&mut f, &mut rng());
        assert_eq!(log, vec![(AttrId(0), ErrorKind::MissingValue)]);
        assert_eq!(f[0], None);
        assert_eq!(f[1].as_deref(), Some("y"));
    }

    #[test]
    fn rate_zero_never_applies() {
        let plan = PerturbPlan::new().rule(NoiseRule::new(AttrId(0), ErrorKind::Misspelling, 0.0));
        let mut f = fields(&["atlanta"]);
        assert!(plan.apply(&mut f, &mut rng()).is_empty());
        assert_eq!(f[0].as_deref(), Some("atlanta"));
    }

    #[test]
    fn abbreviation_uses_variant_map() {
        let plan = PerturbPlan::new().rule(
            NoiseRule::new(AttrId(0), ErrorKind::Abbreviation, 1.0).with_variants(city_variants()),
        );
        let mut f = fields(&["new york"]);
        let log = plan.apply(&mut f, &mut rng());
        assert_eq!(f[0].as_deref(), Some("ny"));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn abbreviation_falls_back_to_initialism() {
        let plan = PerturbPlan::new().rule(NoiseRule::new(AttrId(0), ErrorKind::Abbreviation, 1.0));
        let mut f = fields(&["salt lake city"]);
        plan.apply(&mut f, &mut rng());
        assert_eq!(f[0].as_deref(), Some("slc"));
    }

    #[test]
    fn synonym_without_map_is_noop() {
        let plan = PerturbPlan::new().rule(NoiseRule::new(AttrId(0), ErrorKind::Synonym, 1.0));
        let mut f = fields(&["microsoft"]);
        assert!(plan.apply(&mut f, &mut rng()).is_empty());
        assert_eq!(f[0].as_deref(), Some("microsoft"));
    }

    #[test]
    fn brand_synonym_applies() {
        let plan = PerturbPlan::new().rule(
            NoiseRule::new(AttrId(0), ErrorKind::Synonym, 1.0).with_variants(brand_variants()),
        );
        let mut f = fields(&["microsoft"]);
        plan.apply(&mut f, &mut rng());
        assert_eq!(f[0].as_deref(), Some("ms"));
    }

    #[test]
    fn sprinkle_moves_aux_value_in() {
        let plan = PerturbPlan::new()
            .rule(NoiseRule::new(AttrId(0), ErrorKind::Sprinkle, 1.0).with_aux(AttrId(1)));
        let mut r = rng();
        let mut any_moved = false;
        for _ in 0..20 {
            let mut f = fields(&["golden table", "atlanta"]);
            let log = plan.apply(&mut f, &mut r);
            assert_eq!(log.len(), 1);
            assert_eq!(f[0].as_deref(), Some("golden table atlanta"));
            if f[1].is_none() {
                any_moved = true;
            }
        }
        assert!(any_moved, "source column should sometimes be emptied");
    }

    #[test]
    fn missing_value_on_absent_field_is_noop() {
        let plan = PerturbPlan::new().rule(NoiseRule::new(AttrId(0), ErrorKind::MissingValue, 1.0));
        let mut f: Vec<Option<String>> = vec![None];
        assert!(plan.apply(&mut f, &mut rng()).is_empty());
    }

    #[test]
    fn numeric_jitter_relative_and_absolute() {
        let rel = PerturbPlan::new()
            .rule(NoiseRule::new(AttrId(0), ErrorKind::NumericJitter, 1.0).with_magnitude(0.2));
        let mut f = fields(&["100.0"]);
        rel.apply(&mut f, &mut rng());
        let v: f64 = f[0].as_deref().unwrap().parse().unwrap();
        assert!((80.0..=120.0).contains(&v));

        let abs = PerturbPlan::new()
            .rule(NoiseRule::new(AttrId(0), ErrorKind::NumericJitter, 1.0).with_magnitude(3.0));
        let mut f = fields(&["2005"]);
        abs.apply(&mut f, &mut rng());
        let y: i64 = f[0].as_deref().unwrap().parse().unwrap();
        assert!((2002..=2008).contains(&y));
    }

    #[test]
    fn name_variant_nickname_or_initial() {
        let mut r = rng();
        assert_eq!(
            name_variant(&mut r, "david smith"),
            Some("dave smith".into())
        );
        let with_initial = name_variant(&mut r, "zorro smith").unwrap();
        let words: Vec<&str> = with_initial.split(' ').collect();
        assert_eq!(words.len(), 3);
        assert_eq!(words[0], "zorro");
        assert_eq!(words[2], "smith");
    }

    #[test]
    fn applied_log_matches_changes() {
        // A plan over several attributes: the log must list exactly the
        // attrs whose values changed (or went missing).
        let plan = PerturbPlan::new()
            .rule(NoiseRule::new(AttrId(0), ErrorKind::Misspelling, 1.0))
            .rule(NoiseRule::new(AttrId(1), ErrorKind::MissingValue, 1.0));
        let mut f = fields(&["atlanta", "georgia"]);
        let before = f.clone();
        let log = plan.apply(&mut f, &mut rng());
        for (attr, _) in &log {
            assert_ne!(f[attr.index()], before[attr.index()]);
        }
        assert_eq!(log.len(), 2);
    }
}

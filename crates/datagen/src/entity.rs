//! Clean entity factories, one per domain.
//!
//! A factory generates *clean* entities over a fixed schema; the
//! [`crate::perturb`] layer then projects each entity into a (possibly
//! dirty) A-side and B-side tuple. Pools are shared across entities so
//! that non-matching tuples collide on realistic tokens (two different
//! people named "smith", two restaurants in "atlanta"), which is what
//! makes blocking decisions non-trivial.

use crate::vocab;
use mc_table::Schema;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::RngExt as _;

/// A clean entity: one optional string per schema attribute.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Values aligned with the factory's schema.
    pub fields: Vec<Option<String>>,
}

/// A domain-specific generator of clean entities.
pub trait EntityFactory {
    /// The schema shared by tables A and B.
    fn schema(&self) -> Schema;
    /// Generates the next clean entity.
    fn generate(&mut self, rng: &mut StdRng) -> Entity;
}

fn join_some(parts: &[&str]) -> Option<String> {
    let s = parts.join(" ");
    if s.is_empty() {
        None
    } else {
        Some(s)
    }
}

/// Software products (the Amazon-Google profile): `title, manufacturer,
/// price, category, description`, with a *long* free-text description —
/// the attribute that exercises `FindLongAttr` (§3.2).
pub struct SoftwareProductFactory;

impl EntityFactory for SoftwareProductFactory {
    fn schema(&self) -> Schema {
        Schema::from_names(["title", "manufacturer", "price", "category", "description"])
    }

    fn generate(&mut self, rng: &mut StdRng) -> Entity {
        let (brand, _) = vocab::BRANDS.choose(rng).unwrap();
        let noun = vocab::SOFTWARE_NOUNS.choose(rng).unwrap();
        let q1 = vocab::PRODUCT_QUALIFIERS.choose(rng).unwrap();
        let q2 = vocab::PRODUCT_QUALIFIERS.choose(rng).unwrap();
        let title = if rng.random_bool(0.5) {
            format!("{brand} {noun} {q1} {q2}")
        } else {
            format!("{brand} {noun} {q1}")
        };
        let price = format!("{:.2}", rng.random_range(9.0..400.0f64));
        let category = format!(
            "{} software",
            [
                "business",
                "education",
                "utilities",
                "security",
                "media",
                "games"
            ]
            .choose(rng)
            .unwrap()
        );
        let description = long_description(rng, &title);
        Entity {
            fields: vec![
                Some(title),
                Some(brand.to_string()),
                Some(price),
                Some(category),
                Some(description),
            ],
        }
    }
}

/// A multi-sentence product description (~25–40 words).
fn long_description(rng: &mut StdRng, title: &str) -> String {
    const OPENERS: &[&str] = &[
        "the complete solution for",
        "everything you need for",
        "an award winning tool for",
        "the industry standard for",
        "a powerful new way to handle",
    ];
    const TASKS: &[&str] = &[
        "managing your documents and media",
        "protecting your computer from threats",
        "organizing photos music and video",
        "creating professional publications",
        "tracking finances and budgets",
        "learning at your own pace",
        "editing and sharing creative projects",
    ];
    const CLOSERS: &[&str] = &[
        "includes step by step tutorials and templates",
        "features automatic updates and premium support",
        "compatible with all major operating systems",
        "ships with bonus content and sample projects",
        "designed for both beginners and professionals",
    ];
    let mut parts = vec![format!(
        "{} {} {}",
        OPENERS.choose(rng).unwrap(),
        TASKS.choose(rng).unwrap(),
        CLOSERS.choose(rng).unwrap()
    )];
    for _ in 0..rng.random_range(1..=2usize) {
        parts.push(format!(
            "{} {}",
            TASKS.choose(rng).unwrap(),
            CLOSERS.choose(rng).unwrap()
        ));
    }
    format!("{title} {}", parts.join(" "))
}

/// Electronics (the Walmart-Amazon profile): `title, brand, modelno,
/// price, category, shortdescr, longdescr`.
pub struct ElectronicsFactory;

impl EntityFactory for ElectronicsFactory {
    fn schema(&self) -> Schema {
        Schema::from_names([
            "title",
            "brand",
            "modelno",
            "price",
            "category",
            "shortdescr",
            "longdescr",
        ])
    }

    fn generate(&mut self, rng: &mut StdRng) -> Entity {
        let (brand, _) = vocab::BRANDS.choose(rng).unwrap();
        let noun = vocab::ELECTRONICS_NOUNS.choose(rng).unwrap();
        let q = vocab::PRODUCT_QUALIFIERS.choose(rng).unwrap();
        let model = format!(
            "{}{}{}",
            (b'a' + rng.random_range(0..26u8)) as char,
            (b'a' + rng.random_range(0..26u8)) as char,
            rng.random_range(100..9999u32)
        );
        let title = format!("{brand} {q} {noun} {model}");
        let price = format!("{:.2}", rng.random_range(15.0..1500.0f64));
        let category = noun.to_string();
        let shortdescr = format!("{q} {noun} by {brand}");
        let longdescr = long_description(rng, &title);
        Entity {
            fields: vec![
                Some(title),
                Some(brand.to_string()),
                Some(model),
                Some(price),
                Some(category),
                Some(shortdescr),
                Some(longdescr),
            ],
        }
    }
}

/// Academic papers (the ACM-DBLP profile): `title, authors, venue, year,
/// pages`.
pub struct PaperFactory {
    /// Extra synthetic surnames so big instances do not exhaust the pool.
    extra_surnames: Vec<String>,
}

impl PaperFactory {
    /// A factory with `extra` synthetic surnames appended to the built-in
    /// pool (pass 0 for the small ACM-DBLP profile).
    pub fn new(rng: &mut StdRng, extra: usize) -> Self {
        PaperFactory {
            extra_surnames: vocab::synth_pool(rng, extra),
        }
    }

    fn surname<'a>(&'a self, rng: &mut StdRng) -> &'a str {
        let total = vocab::LAST_NAMES.len() + self.extra_surnames.len();
        let i = rng.random_range(0..total);
        if i < vocab::LAST_NAMES.len() {
            vocab::LAST_NAMES[i]
        } else {
            &self.extra_surnames[i - vocab::LAST_NAMES.len()]
        }
    }
}

impl EntityFactory for PaperFactory {
    fn schema(&self) -> Schema {
        Schema::from_names(["title", "authors", "venue", "year", "pages"])
    }

    fn generate(&mut self, rng: &mut StdRng) -> Entity {
        let w1 = vocab::PAPER_TOPIC_WORDS.choose(rng).unwrap();
        let mut w2 = vocab::PAPER_TOPIC_WORDS.choose(rng).unwrap();
        while w2 == w1 {
            w2 = vocab::PAPER_TOPIC_WORDS.choose(rng).unwrap();
        }
        let glue = vocab::PAPER_GLUE_WORDS.choose(rng).unwrap();
        let w3 = vocab::PAPER_TOPIC_WORDS.choose(rng).unwrap();
        let title = format!("{w1} {w2} {glue} {w3} queries");
        let n_authors = rng.random_range(1..=4usize);
        let mut authors = Vec::with_capacity(n_authors);
        for _ in 0..n_authors {
            let first = vocab::FIRST_NAMES.choose(rng).unwrap();
            let last = self.surname(rng).to_string();
            authors.push(format!("{first} {last}"));
        }
        let venue = vocab::VENUES.choose(rng).unwrap();
        let year = format!("{}", rng.random_range(1995..2018u32));
        let start = rng.random_range(1..900u32);
        let pages = format!("{start}-{}", start + rng.random_range(8..15u32));
        Entity {
            fields: vec![
                Some(title),
                join_some(&[&authors.join(" , ")]),
                Some(venue.to_string()),
                Some(year),
                Some(pages),
            ],
        }
    }
}

/// Large bibliographic records (the Papers profile): `title, authors,
/// venue, year, volume, pages, publisher`.
pub struct BigPaperFactory {
    inner: PaperFactory,
}

impl BigPaperFactory {
    /// A factory with an extended surname pool of size `extra`.
    pub fn new(rng: &mut StdRng, extra: usize) -> Self {
        BigPaperFactory {
            inner: PaperFactory::new(rng, extra),
        }
    }
}

impl EntityFactory for BigPaperFactory {
    fn schema(&self) -> Schema {
        Schema::from_names([
            "title",
            "authors",
            "venue",
            "year",
            "volume",
            "pages",
            "publisher",
        ])
    }

    fn generate(&mut self, rng: &mut StdRng) -> Entity {
        let base = self.inner.generate(rng);
        let [title, authors, venue, year, pages]: [Option<String>; 5] =
            base.fields.try_into().unwrap();
        let volume = Some(format!("{}", rng.random_range(1..60u32)));
        let publisher = Some(
            [
                "acm",
                "ieee",
                "springer",
                "elsevier",
                "vldb endowment",
                "usenix",
            ]
            .choose(rng)
            .unwrap()
            .to_string(),
        );
        Entity {
            fields: vec![title, authors, venue, year, volume, pages, publisher],
        }
    }
}

/// Restaurants (the Fodors-Zagats profile): `name, addr, city, state,
/// phone, type, review`.
pub struct RestaurantFactory;

impl EntityFactory for RestaurantFactory {
    fn schema(&self) -> Schema {
        Schema::from_names(["name", "addr", "city", "state", "phone", "type", "review"])
    }

    fn generate(&mut self, rng: &mut StdRng) -> Entity {
        let w1 = vocab::RESTAURANT_WORDS.choose(rng).unwrap();
        let w2 = vocab::RESTAURANT_WORDS.choose(rng).unwrap();
        let cuisine = vocab::CUISINES.choose(rng).unwrap();
        let name = if rng.random_bool(0.4) {
            format!("the {w1} {w2}")
        } else {
            format!("{w1} {w2} {cuisine}")
        };
        let (city, _) = vocab::CITIES.choose(rng).unwrap();
        let (state, _) = vocab::STATES.choose(rng).unwrap();
        let num = rng.random_range(1..9999u32);
        let street = vocab::RESTAURANT_WORDS.choose(rng).unwrap();
        let suffix = vocab::STREET_SUFFIXES.choose(rng).unwrap();
        let addr = format!("{num} {street} {suffix}");
        let phone = format!(
            "{}-{}-{:04}",
            rng.random_range(200..999u32),
            rng.random_range(200..999u32),
            rng.random_range(0..9999u32)
        );
        let review = format!("{}", rng.random_range(20..30u32) as f64 / 10.0);
        Entity {
            fields: vec![
                Some(name),
                Some(addr),
                Some(city.to_string()),
                Some(state.to_string()),
                Some(phone),
                Some(cuisine.to_string()),
                Some(review),
            ],
        }
    }
}

/// Songs (the Music1/Music2 profiles): `title, artist, album, year,
/// genre, duration, track, label`. Very short values (avg ~9 chars per
/// attribute in the paper).
pub struct SongFactory {
    artists: Vec<String>,
    albums: Vec<String>,
    labels: Vec<String>,
}

impl SongFactory {
    /// A factory with `n_artists` synthetic artist names (two-word),
    /// `n_albums` album titles, and a small label pool. Larger pools make
    /// larger datasets without degenerate token collisions.
    pub fn new(rng: &mut StdRng, n_artists: usize, n_albums: usize) -> Self {
        let raw = vocab::synth_pool(rng, n_artists + n_albums + 40);
        let (artist_words, rest) = raw.split_at(n_artists);
        let (album_words, label_words) = rest.split_at(n_albums);
        let artists = artist_words
            .iter()
            .map(|w| {
                let sw = vocab::SONG_WORDS[(w.len() * 7) % vocab::SONG_WORDS.len()];
                format!("{sw} {w}")
            })
            .collect();
        let albums = album_words
            .iter()
            .map(|w| {
                let sw = vocab::SONG_WORDS[(w.len() * 13) % vocab::SONG_WORDS.len()];
                format!("{w} {sw}")
            })
            .collect();
        let labels = label_words.iter().map(|w| format!("{w} records")).collect();
        SongFactory {
            artists,
            albums,
            labels,
        }
    }
}

impl EntityFactory for SongFactory {
    fn schema(&self) -> Schema {
        Schema::from_names([
            "title", "artist", "album", "year", "genre", "duration", "track", "label",
        ])
    }

    fn generate(&mut self, rng: &mut StdRng) -> Entity {
        let w1 = vocab::SONG_WORDS.choose(rng).unwrap();
        let w2 = vocab::SONG_WORDS.choose(rng).unwrap();
        let w3 = vocab::SONG_WORDS.choose(rng).unwrap();
        let title = match rng.random_range(0..3u8) {
            0 => format!("{w1} {w2}"),
            1 => format!("{w1} {w2} {w3}"),
            _ => format!("the {w1} {w2}"),
        };
        let artist = self.artists.choose(rng).unwrap().clone();
        let album = self.albums.choose(rng).unwrap().clone();
        let year = format!("{}", rng.random_range(1960..2017u32));
        let genre = vocab::GENRES.choose(rng).unwrap().to_string();
        let duration = format!(
            "{}:{:02}",
            rng.random_range(1..9u32),
            rng.random_range(0..60u32)
        );
        let track = format!("{}", rng.random_range(1..20u32));
        let label = self.labels.choose(rng).unwrap().clone();
        Entity {
            fields: vec![
                Some(title),
                Some(artist),
                Some(album),
                Some(year),
                Some(genre),
                Some(duration),
                Some(track),
                Some(label),
            ],
        }
    }
}

/// Synthetic scale-profile entities (the ZipfScale profile): `name,
/// tags, category`, every token drawn from one shared vocabulary with a
/// Zipfian rank-frequency law. The resulting document frequencies mirror
/// real text (a handful of stopword-like tokens in most records, a long
/// tail of rare ones), which is exactly the regime the SSJ prefix filter
/// and the frequent-rank bitmap kernel are designed around.
pub struct ZipfFactory {
    pool: Vec<String>,
    /// Cumulative (unnormalized) Zipf weights over `pool` ranks.
    cum: Vec<f64>,
}

impl ZipfFactory {
    /// A factory over `vocab` distinct words where rank `r` (0-based) is
    /// drawn with weight `1 / (r + 1)^s`.
    pub fn new(rng: &mut StdRng, vocab: usize, s: f64) -> Self {
        assert!(vocab > 0);
        let pool = vocab::synth_pool(rng, vocab);
        let mut cum = Vec::with_capacity(vocab);
        let mut total = 0.0;
        for r in 0..vocab {
            total += ((r + 1) as f64).powf(-s);
            cum.push(total);
        }
        ZipfFactory { pool, cum }
    }

    fn word(&self, rng: &mut StdRng) -> &str {
        let total = *self.cum.last().expect("non-empty vocabulary");
        let x = rng.random_range(0.0..total);
        let i = self.cum.partition_point(|&c| c <= x);
        &self.pool[i.min(self.pool.len() - 1)]
    }

    fn phrase(&self, rng: &mut StdRng, lo: usize, hi: usize) -> String {
        let n = rng.random_range(lo..=hi);
        let mut words = Vec::with_capacity(n);
        for _ in 0..n {
            words.push(self.word(rng));
        }
        words.join(" ")
    }
}

impl EntityFactory for ZipfFactory {
    fn schema(&self) -> Schema {
        Schema::from_names(["name", "tags", "category"])
    }

    fn generate(&mut self, rng: &mut StdRng) -> Entity {
        let name = self.phrase(rng, 3, 7);
        let tags = self.phrase(rng, 2, 5);
        let category = self.phrase(rng, 1, 2);
        Entity {
            fields: vec![Some(name), Some(tags), Some(category)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    fn check_factory(f: &mut dyn EntityFactory, n: usize) {
        let schema = f.schema();
        let mut r = rng();
        for _ in 0..n {
            let e = f.generate(&mut r);
            assert_eq!(e.fields.len(), schema.len());
            // Clean entities have no missing values in these factories.
            assert!(e.fields.iter().all(|v| v.is_some()));
        }
    }

    #[test]
    fn all_factories_respect_their_schema() {
        check_factory(&mut SoftwareProductFactory, 50);
        check_factory(&mut ElectronicsFactory, 50);
        check_factory(&mut PaperFactory::new(&mut rng(), 0), 50);
        check_factory(&mut BigPaperFactory::new(&mut rng(), 100), 50);
        check_factory(&mut RestaurantFactory, 50);
        check_factory(&mut SongFactory::new(&mut rng(), 100, 100), 50);
    }

    #[test]
    fn software_descriptions_are_long() {
        let mut f = SoftwareProductFactory;
        let mut r = rng();
        let mut total = 0usize;
        for _ in 0..30 {
            let e = f.generate(&mut r);
            total += e.fields[4].as_ref().unwrap().len();
        }
        assert!(total / 30 > 100, "descriptions should average >100 chars");
    }

    #[test]
    fn songs_are_short() {
        let mut r = rng();
        let mut f = SongFactory::new(&mut r, 200, 200);
        let e = f.generate(&mut r);
        for v in e.fields.iter().flatten() {
            assert!(v.len() < 40, "song field too long: {v}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut f1 = RestaurantFactory;
        let mut f2 = RestaurantFactory;
        let mut r1 = rng();
        let mut r2 = rng();
        for _ in 0..10 {
            assert_eq!(f1.generate(&mut r1).fields, f2.generate(&mut r2).fields);
        }
    }

    #[test]
    fn paper_years_parse() {
        let mut r = rng();
        let mut f = PaperFactory::new(&mut r, 0);
        for _ in 0..20 {
            let e = f.generate(&mut r);
            let y: u32 = e.fields[3].as_ref().unwrap().parse().unwrap();
            assert!((1995..2018).contains(&y));
        }
    }
}

//! A blocking client for the daemon protocol — what `mc serve
//! --script`, the `serve_load` bench, and the integration tests speak.

use crate::frame::{read_frame, write_frame, FrameError};
use mc_obs::JsonValue;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to a daemon. Requests on a single client are a
/// sequential script: `call` writes a frame and blocks for its reply.
pub struct Client {
    stream: TcpStream,
    max_frame_bytes: usize,
}

impl Client {
    /// Connects. `timeout` bounds the connect and every subsequent
    /// reply wait.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Client, String> {
        let resolved = addr
            .to_socket_addrs()
            .map_err(|e| e.to_string())?
            .next()
            .ok_or("address resolved to nothing")?;
        let stream = TcpStream::connect_timeout(&resolved, timeout).map_err(|e| e.to_string())?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| e.to_string())?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(|e| e.to_string())?;
        Ok(Client {
            stream,
            max_frame_bytes: 64 << 20,
        })
    }

    /// Sends one request frame and blocks for the response frame.
    pub fn call(&mut self, request: &JsonValue) -> Result<JsonValue, String> {
        write_frame(&mut self.stream, request).map_err(|e| format!("send: {e}"))?;
        loop {
            match read_frame(&mut self.stream, self.max_frame_bytes, 10_000) {
                Ok(v) => return Ok(v),
                // The socket read timeout doubles as the reply wait here;
                // `Idle` between frames just means the worker is still
                // executing — keep waiting (the daemon's own deadline
                // produces a `timeout` error frame eventually).
                Err(FrameError::Idle) => continue,
                Err(e) => return Err(format!("recv: {e}")),
            }
        }
    }

    /// `call` + protocol check: returns the payload of an `ok` response,
    /// or `Err((code, message))` for a structured error.
    pub fn call_ok(&mut self, request: &JsonValue) -> Result<JsonValue, (String, String)> {
        let resp = self
            .call(request)
            .map_err(|e| ("transport".to_string(), e))?;
        if resp.get("ok").and_then(JsonValue::as_bool) == Some(true) {
            return Ok(resp);
        }
        let code = resp
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(JsonValue::as_str)
            .unwrap_or("?")
            .to_string();
        let message = resp
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(JsonValue::as_str)
            .unwrap_or("?")
            .to_string();
        Err((code, message))
    }

    /// Requests a graceful drain.
    pub fn shutdown(&mut self) -> Result<JsonValue, String> {
        self.call(&JsonValue::Obj(vec![("verb".into(), "shutdown".into())]))
    }
}

//! `mcd` — the standalone MatchCatcher debug daemon. Equivalent to
//! `mc serve`; see `mc_serve::cli::USAGE` and DESIGN.md §"Debug
//! service".

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(mc_serve::cli::run(&args));
}

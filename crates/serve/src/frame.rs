//! The wire codec: length-prefixed JSON frames.
//!
//! One frame = a 4-byte little-endian payload length followed by that
//! many bytes of UTF-8 JSON. JSON values are serialized with
//! [`JsonValue::to_json_string`] — the satellite-promoted emitter shared
//! with the `mc-obs` snapshot writers — so hostile strings (quotes,
//! control characters) are escaped identically everywhere.
//!
//! The reader distinguishes a **clean close** (EOF on a frame boundary)
//! from a truncated frame, rejects frames above the negotiated cap
//! before reading their body (the connection must then close — the
//! stream cannot be resynchronized past an unread body), and treats the
//! socket's read timeout as an *idle poll*: between frames it simply
//! reports [`FrameError::Idle`] so the connection loop can check the
//! daemon's shutdown flag, while a timeout *inside* a frame only fails
//! the read after `stall_ms` of no progress.

use mc_obs::JsonValue;
use std::io::{ErrorKind, Read, Write};
use std::time::Instant;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection on a frame boundary.
    Closed,
    /// The socket's read timeout fired with no frame in progress.
    Idle,
    /// I/O failure (including EOF or stall mid-frame).
    Io(std::io::Error),
    /// The announced payload length exceeds the frame cap.
    TooLarge {
        /// Announced payload length.
        len: usize,
        /// Configured cap.
        cap: usize,
    },
    /// The payload was not valid JSON (or not valid UTF-8).
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Idle => write!(f, "idle (read timeout between frames)"),
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::TooLarge { len, cap } => {
                write!(f, "frame of {len} bytes exceeds the {cap}-byte cap")
            }
            FrameError::Malformed(m) => write!(f, "malformed frame payload: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Serializes `value` and writes it as one frame.
pub fn write_frame(w: &mut impl Write, value: &JsonValue) -> std::io::Result<()> {
    let body = value.to_json_string();
    let mut buf = Vec::with_capacity(4 + body.len());
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(body.as_bytes());
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one frame, allowing up to `cap` payload bytes.
///
/// `stall_ms` bounds how long a *started* frame may sit without
/// progress before the read fails (`0` = fail on the first in-frame
/// timeout). A read timeout before any byte of the frame arrives
/// returns [`FrameError::Idle`] instead — the caller's poll point.
pub fn read_frame(r: &mut impl Read, cap: usize, stall_ms: u64) -> Result<JsonValue, FrameError> {
    let mut len_buf = [0u8; 4];
    read_full(r, &mut len_buf, true, stall_ms)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > cap {
        return Err(FrameError::TooLarge { len, cap });
    }
    let mut body = vec![0u8; len];
    read_full(r, &mut body, false, stall_ms)?;
    let text = std::str::from_utf8(&body).map_err(|e| FrameError::Malformed(e.to_string()))?;
    JsonValue::parse(text).map_err(FrameError::Malformed)
}

/// Fills `buf`, tolerating short reads and — until the first byte when
/// `boundary` — timeouts and clean EOF.
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    boundary: bool,
    stall_ms: u64,
) -> Result<(), FrameError> {
    let mut filled = 0usize;
    let mut last_progress: Option<Instant> = None;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if boundary && filled == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Io(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    ))
                });
            }
            Ok(n) => {
                filled += n;
                last_progress = Some(Instant::now());
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if boundary && filled == 0 && last_progress.is_none() {
                    return Err(FrameError::Idle);
                }
                let stalled = last_progress
                    .map(|t| t.elapsed().as_millis() as u64)
                    .unwrap_or(u64::MAX);
                if stalled >= stall_ms {
                    return Err(FrameError::Io(std::io::Error::new(
                        ErrorKind::TimedOut,
                        "frame stalled mid-read",
                    )));
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame_bytes(v: &JsonValue) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, v).unwrap();
        out
    }

    #[test]
    fn frames_round_trip() {
        let v = JsonValue::Obj(vec![
            ("verb".into(), "open".into()),
            ("hostile".into(), "a\"b\\c\nd\u{1}".into()),
            (
                "nums".into(),
                JsonValue::Arr(vec![0u64.into(), JsonValue::Num(-1.5)]),
            ),
        ]);
        let bytes = frame_bytes(&v);
        assert_eq!(
            u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize,
            bytes.len() - 4
        );
        let mut cur = Cursor::new(bytes);
        let back = read_frame(&mut cur, 1 << 20, 0).unwrap();
        assert_eq!(back, v);
        // EOF on the boundary is a clean close.
        assert!(matches!(
            read_frame(&mut cur, 1 << 20, 0),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn multiple_frames_stream_back_to_back() {
        let a = JsonValue::Obj(vec![("n".into(), 1u64.into())]);
        let b = JsonValue::Obj(vec![("n".into(), 2u64.into())]);
        let mut bytes = frame_bytes(&a);
        bytes.extend(frame_bytes(&b));
        let mut cur = Cursor::new(bytes);
        assert_eq!(read_frame(&mut cur, 1 << 20, 0).unwrap(), a);
        assert_eq!(read_frame(&mut cur, 1 << 20, 0).unwrap(), b);
    }

    #[test]
    fn oversized_frames_are_rejected_before_the_body() {
        let mut bytes = (1_000_000u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(b"x"); // body never sent in full
        let mut cur = Cursor::new(bytes);
        match read_frame(&mut cur, 1024, 0) {
            Err(FrameError::TooLarge { len, cap }) => {
                assert_eq!((len, cap), (1_000_000, 1024));
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncation_mid_frame_is_an_io_error() {
        let full = frame_bytes(&JsonValue::Obj(vec![("k".into(), "value".into())]));
        for cut in [2, 5, full.len() - 1] {
            let mut cur = Cursor::new(full[..cut].to_vec());
            assert!(
                matches!(read_frame(&mut cur, 1 << 20, 0), Err(FrameError::Io(_))),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn garbage_payload_is_malformed() {
        let mut bytes = (3u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(b"{{{");
        let mut cur = Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cur, 1 << 20, 0),
            Err(FrameError::Malformed(_))
        ));
    }
}

//! The daemon: accept loop, per-connection reader threads, and a
//! bounded worker pool with a backpressure queue.
//!
//! Threading model (std-only — no async runtime):
//!
//! - **accept thread**: blocks on [`std::net::TcpListener::accept`],
//!   spawns one reader thread per connection.
//! - **reader threads**: block on their socket with a short read
//!   timeout, parse frames, and enqueue [`Job`]s. Each job carries a
//!   reply channel; the reader writes responses back in request order,
//!   so one connection is a sequential script while different
//!   connections interleave freely in the pool.
//! - **worker pool**: `workers` threads pop jobs from a bounded queue.
//!   A full queue rejects at enqueue time with `busy` (backpressure —
//!   the daemon never buffers unboundedly); a job whose deadline passed
//!   while queued answers `timeout` without executing.
//!
//! Shutdown (`shutdown` verb or [`DaemonHandle::shutdown`]) is a
//! **graceful drain**: the flag flips, the listener is woken by a
//! self-connection and stops accepting, readers answer `shutting_down`
//! to new requests and exit at their next idle poll, workers finish the
//! queue and exit. There is no OS signal handling (std-only); front
//! `mcd` with a supervisor that translates SIGTERM into the `shutdown`
//! verb — see DESIGN.md §"Debug service".

use crate::frame::{read_frame, write_frame, FrameError};
use crate::proto::{error_response, ok_response, parse_request, ErrorCode, Request};
use crate::session::SessionManager;
use crate::ServeParams;
use mc_obs::JsonValue;
use std::collections::VecDeque;
use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often idle reader threads and the accept loop re-check the
/// shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// One queued request.
struct Job {
    request: Request,
    /// Response goes back to the owning connection's reader.
    reply: mpsc::Sender<JsonValue>,
    /// Queued-past-this → `timeout` without executing.
    deadline: Instant,
}

/// State shared by every daemon thread.
struct Shared {
    params: ServeParams,
    /// The bound listen address (used to self-connect and wake the
    /// blocking accept loop on drain).
    addr: SocketAddr,
    sessions: SessionManager,
    queue: Mutex<VecDeque<Job>>,
    /// Signals workers that the queue is non-empty (or draining).
    wake: Condvar,
    shutdown: AtomicBool,
    /// Protocol-error count across all connections (frame decode or
    /// request parse failures) — the load bench asserts this stays 0.
    protocol_errors: AtomicU64,
    requests: AtomicU64,
}

impl Shared {
    /// Enqueues a job, applying backpressure at `queue_depth`.
    fn enqueue(&self, job: Job) -> Result<(), ErrorCode> {
        if self.shutdown.load(Ordering::SeqCst) {
            return Err(ErrorCode::ShuttingDown);
        }
        let mut q = self.queue.lock().unwrap();
        if q.len() >= self.params.queue_depth {
            return Err(ErrorCode::Busy);
        }
        q.push_back(job);
        drop(q);
        self.wake.notify_one();
        Ok(())
    }

    /// Blocks until a job is available or the daemon is draining and the
    /// queue is empty (→ `None`, worker exits).
    fn dequeue(&self) -> Option<Job> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            q = self.wake.wait(q).unwrap();
        }
    }
}

/// A running daemon (background threads), plus the handle to stop it.
pub struct Daemon {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// A cheap clone-able control handle onto a spawned [`Daemon`].
#[derive(Clone)]
pub struct DaemonHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl Daemon {
    /// Binds, spawns the accept loop and worker pool, and returns
    /// immediately. `params.addr` with port 0 picks an ephemeral port;
    /// read the bound address back with [`Daemon::addr`].
    pub fn spawn(params: ServeParams) -> Result<Daemon, String> {
        params.validate()?;
        let listener =
            TcpListener::bind(&params.addr).map_err(|e| format!("bind {}: {e}", params.addr))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let sessions = SessionManager::new(
            params.max_sessions,
            params.max_resident_bytes,
            params.store_root.clone(),
        );
        let shared = Arc::new(Shared {
            params,
            addr,
            sessions,
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            protocol_errors: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        });

        let workers = (0..shared.params.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mcd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| e.to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mcd-accept".into())
                .spawn(move || accept_loop(listener, &shared))
                .map_err(|e| e.to_string())?
        };

        Ok(Daemon {
            shared,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A control handle usable from other threads.
    pub fn handle(&self) -> DaemonHandle {
        DaemonHandle {
            shared: Arc::clone(&self.shared),
            addr: self.addr,
        }
    }

    /// Blocks until something initiates a drain (the `shutdown` verb or
    /// a [`DaemonHandle`]), then joins every thread. The foreground mode
    /// of `mcd`.
    pub fn wait(self) -> (u64, u64) {
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(IDLE_POLL);
        }
        self.shutdown()
    }

    /// Initiates a graceful drain and joins every daemon thread:
    /// in-flight and already-queued requests finish, new ones are
    /// refused. Returns (requests served, protocol errors).
    pub fn shutdown(mut self) -> (u64, u64) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        // Wake the blocking accept() so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        (
            self.shared.requests.load(Ordering::Relaxed),
            self.shared.protocol_errors.load(Ordering::Relaxed),
        )
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Dropping a daemon drains it; `shutdown` already emptied the
        // handles, making this a no-op after an explicit drain.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl DaemonHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a drain has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Total requests executed so far.
    pub fn requests(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// Frame-decode / request-parse failures so far.
    pub fn protocol_errors(&self) -> u64 {
        self.shared.protocol_errors.load(Ordering::Relaxed)
    }

    /// Resident sessions right now.
    pub fn resident_sessions(&self) -> usize {
        self.shared.sessions.resident_sessions()
    }

    /// Estimated resident bytes across sessions right now.
    pub fn resident_bytes(&self) -> usize {
        self.shared.sessions.resident_bytes()
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(stream) => {
                let shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("mcd-conn".into())
                    .spawn(move || connection_loop(stream, &shared));
                if spawned.is_err() {
                    // Thread exhaustion: drop the connection rather than
                    // the daemon.
                    mc_obs::counter!("mc.serve.conn.spawn_failed").inc();
                }
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(IDLE_POLL);
            }
        }
    }
}

/// Reads frames off one connection, queues them, and writes replies
/// back in order.
fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(
        shared.params.request_timeout_ms,
    )));
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    let cap = shared.params.max_frame_bytes;
    let stall = shared.params.request_timeout_ms;

    loop {
        let value = match read_frame(&mut reader, cap, stall) {
            Ok(v) => v,
            Err(FrameError::Idle) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(FrameError::Closed) => return,
            Err(FrameError::TooLarge { len, cap }) => {
                // The unread body would desync the stream: answer, close.
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let resp = error_response(
                    "?",
                    ErrorCode::BadRequest,
                    &format!("frame of {len} bytes exceeds the {cap}-byte cap"),
                );
                let _ = write_frame(&mut writer, &resp);
                return;
            }
            Err(FrameError::Malformed(m)) => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let resp = error_response("?", ErrorCode::BadRequest, &m);
                if write_frame(&mut writer, &resp).is_err() {
                    return;
                }
                continue;
            }
            Err(FrameError::Io(_)) => return,
        };

        let request = match parse_request(&value) {
            Ok(r) => r,
            Err(m) => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let verb = value
                    .get("verb")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?")
                    .to_string();
                let resp = error_response(&verb, ErrorCode::BadRequest, &m);
                if write_frame(&mut writer, &resp).is_err() {
                    return;
                }
                continue;
            }
        };

        if matches!(request, Request::Shutdown) {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.wake.notify_all();
            // Wake the accept loop so the drain completes without
            // waiting for another client.
            let _ = TcpStream::connect(shared.addr);
            let resp = ok_response("shutdown", vec![("draining".into(), true.into())]);
            let _ = write_frame(&mut writer, &resp);
            return;
        }

        let verb = request.verb();
        let (tx, rx) = mpsc::channel();
        let job = Job {
            request,
            reply: tx,
            deadline: Instant::now() + Duration::from_millis(shared.params.request_timeout_ms),
        };
        let response = match shared.enqueue(job) {
            Ok(()) => match rx.recv() {
                Ok(resp) => resp,
                Err(_) => error_response(
                    verb,
                    ErrorCode::Internal,
                    "worker dropped the request (daemon drained mid-flight)",
                ),
            },
            Err(code) => {
                let msg = match code {
                    ErrorCode::Busy => "queue full — retry with backoff",
                    _ => "daemon is draining",
                };
                error_response(verb, code, msg)
            }
        };
        if write_frame(&mut writer, &response).is_err() {
            return;
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.dequeue() {
        let verb = job.request.verb();
        let response = if Instant::now() > job.deadline {
            mc_obs::counter!("mc.serve.timeouts").inc();
            error_response(
                verb,
                ErrorCode::Timeout,
                "request exceeded its deadline while queued",
            )
        } else {
            shared.requests.fetch_add(1, Ordering::Relaxed);
            // Session verbs guard their own pipeline panics, but a
            // worker must survive *any* panic: a dead worker would
            // strand queued jobs (their reply senders live in the
            // queue) and hang every waiting connection.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                shared.sessions.execute(&job.request)
            }))
            .unwrap_or_else(|_| {
                error_response(verb, ErrorCode::Internal, "request handler panicked")
            })
        };
        // A reader that gave up (connection dropped) is fine to ignore.
        let _ = job.reply.send(response);
    }
}

//! The daemon's command line, shared by the `mcd` binary and the
//! `mc serve` subcommand.

use crate::{Daemon, ServeParams};

/// Usage text (flags accepted by [`run`]).
pub const USAGE: &str = "usage: mcd [--addr HOST:PORT] [--workers N] [--queue-depth N]\n\
     \x20          [--max-frame-bytes N] [--max-sessions N] [--max-resident-bytes N]\n\
     \x20          [--timeout-ms N] [--store DIR]\n\
     \x20   port 0 picks an ephemeral port; the bound address is printed as\n\
     \x20   'mcd listening on HOST:PORT' once the daemon accepts connections.\n\
     \x20   Stop it with the `shutdown` verb (graceful drain).";

/// Parses flags into [`ServeParams`].
pub fn parse_args(args: &[String]) -> Result<ServeParams, String> {
    let mut params = ServeParams::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = || -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let parse = |v: &str| -> Result<usize, String> {
            v.parse().map_err(|_| format!("{flag}: bad number {v:?}"))
        };
        match flag {
            "--addr" => params.addr = value()?.clone(),
            "--workers" => params.workers = parse(value()?)?,
            "--queue-depth" => params.queue_depth = parse(value()?)?,
            "--max-frame-bytes" => params.max_frame_bytes = parse(value()?)?,
            "--max-sessions" => params.max_sessions = parse(value()?)?,
            "--max-resident-bytes" => params.max_resident_bytes = parse(value()?)?,
            "--timeout-ms" => params.request_timeout_ms = parse(value()?)? as u64,
            "--store" => params.store_root = Some(value()?.into()),
            _ => return Err(format!("unknown flag {flag}")),
        }
        i += 2;
    }
    params.validate()?;
    Ok(params)
}

/// Parses, spawns, prints the bound address, and blocks until a
/// `shutdown` frame drains the daemon. Returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let params = match parse_args(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("mcd: {e}\n{USAGE}");
            return 2;
        }
    };
    let daemon = match Daemon::spawn(params) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("mcd: {e}");
            return 1;
        }
    };
    println!("mcd listening on {}", daemon.addr());
    let (requests, protocol_errors) = daemon.wait();
    println!("mcd drained: {requests} requests served, {protocol_errors} protocol errors");
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_map_onto_params() {
        let args: Vec<String> = [
            "--addr",
            "127.0.0.1:7070",
            "--workers",
            "3",
            "--queue-depth",
            "9",
            "--max-sessions",
            "5",
            "--timeout-ms",
            "1234",
        ]
        .map(String::from)
        .to_vec();
        let p = parse_args(&args).unwrap();
        assert_eq!(p.addr, "127.0.0.1:7070");
        assert_eq!((p.workers, p.queue_depth, p.max_sessions), (3, 9, 5));
        assert_eq!(p.request_timeout_ms, 1234);
    }

    #[test]
    fn bad_flags_are_rejected() {
        for bad in [
            &["--nope"][..],
            &["--workers"],
            &["--workers", "x"],
            &["--workers", "0"],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(parse_args(&args).is_err(), "{bad:?}");
        }
    }
}

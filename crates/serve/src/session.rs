//! Resident debug sessions: open/rerun/page/label/metrics/close over a
//! [`matchcatcher::DebugSession`] per client session.
//!
//! Lifecycle: `open` runs the pipeline cold (warm-loading store
//! artifacts when a store root is configured) and parks the live
//! session; every later verb is a delta operation against that resident
//! state. Sessions serialize on their own mutex — two requests to the
//! *same* session queue behind each other, requests to different
//! sessions run concurrently — and the manager's map lock is never held
//! across pipeline work.
//!
//! Eviction: the manager tracks an estimated resident footprint per
//! session ([`matchcatcher::DebugSession::resident_bytes`]). When the
//! session count exceeds `max_sessions` or the summed footprint exceeds
//! `max_resident_bytes`, least-recently-used sessions are dropped. An
//! evicted id leaves a tombstone so later requests get the precise
//! `session_evicted` error (re-open and replay) rather than the
//! `unknown_session` they would get for an id that never existed.

use crate::proto::{
    explain_item_json, explanation_json, ok_response, pairs_json, pervade_group_json,
    report_summary, ErrorCode, OpenParams, ReqDelta, ReqKilled, Request, TableSource,
    EXPLAIN_VERSION, PROTO_VERSION,
};
use matchcatcher::joint::QStrategy;
use matchcatcher::{DebugReport, DebugSession, DebuggerParams, MatchCatcher, Oracle};
use mc_blocking::{Blocker, KeyFunc};
use mc_datagen::delta::{random_delta, DeltaSpec};
use mc_datagen::profiles::DatasetProfile;
use mc_obs::{JsonValue, ObsContext};
use mc_store::StoreConfig;
use mc_table::{pair_key, AttrId, GoldMatches, PairSet, Schema, Table, TableDelta, Tuple, TupleId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A request outcome: payload members for the `ok` envelope, or a
/// structured error.
pub type VerbResult = Result<Vec<(String, JsonValue)>, (ErrorCode, String)>;

/// The oracle backing a served session: gold matches (when the source
/// provides them) overlaid by labels the client sent via the `label`
/// verb. Overrides win — a user correction sticks across reruns.
struct SessionOracle {
    gold: GoldMatches,
    overrides: HashMap<u64, bool>,
    labels: usize,
}

impl Oracle for SessionOracle {
    fn is_match(&mut self, a: TupleId, b: TupleId) -> bool {
        self.labels += 1;
        match self.overrides.get(&pair_key(a, b)) {
            Some(&v) => v,
            None => self.gold.is_match(a, b),
        }
    }

    fn labels_given(&self) -> usize {
        self.labels
    }
}

/// Everything a verb needs exclusive access to.
struct SessionInner {
    session: DebugSession,
    oracle: SessionOracle,
    last: DebugReport,
    reruns: u64,
}

/// One resident session.
struct Slot {
    id: u64,
    /// The session's own metrics scope: attached around every pipeline
    /// call, so `metrics` returns exactly this session's activity.
    obs: ObsContext,
    inner: Mutex<SessionInner>,
    /// LRU clock value at last touch.
    last_used: AtomicU64,
    /// Estimated resident footprint, refreshed after open/rerun.
    resident: AtomicUsize,
}

/// Owns every resident session; shared by all worker threads.
pub struct SessionManager {
    max_sessions: usize,
    max_resident_bytes: usize,
    store_root: Option<PathBuf>,
    slots: Mutex<HashMap<u64, Arc<Slot>>>,
    /// Ids removed by eviction (not by `close`), for precise errors.
    evicted: Mutex<HashSet<u64>>,
    next_id: AtomicU64,
    clock: AtomicU64,
}

impl SessionManager {
    /// A manager enforcing the given budgets.
    pub fn new(
        max_sessions: usize,
        max_resident_bytes: usize,
        store_root: Option<PathBuf>,
    ) -> Self {
        SessionManager {
            max_sessions,
            max_resident_bytes,
            store_root,
            slots: Mutex::new(HashMap::new()),
            evicted: Mutex::new(HashSet::new()),
            next_id: AtomicU64::new(1),
            clock: AtomicU64::new(1),
        }
    }

    /// Executes one parsed request (everything but `shutdown`, which is
    /// the server's concern) and builds the response frame.
    pub fn execute(&self, req: &Request) -> JsonValue {
        let verb = req.verb();
        let result = match req {
            Request::Open { source, params } => self.open(source, *params),
            Request::Rerun {
                session,
                delta_a,
                delta_b,
                killed,
            } => self.rerun(*session, delta_a.as_ref(), delta_b.as_ref(), killed),
            Request::Page {
                session,
                offset,
                limit,
            } => self.page(*session, *offset, *limit),
            Request::Label {
                session,
                a,
                b,
                is_match,
            } => self.label(*session, *a, *b, *is_match),
            Request::Explain {
                session,
                offset,
                limit,
            } => self.explain(*session, *offset, *limit),
            Request::Pervade { session, limit } => self.pervade(*session, *limit),
            Request::Gc { max_bytes } => self.gc(*max_bytes),
            Request::Metrics { session } => self.metrics(*session),
            Request::Close { session } => self.close(*session),
            Request::Shutdown => Err((
                ErrorCode::BadRequest,
                "shutdown is handled by the server, not a session".into(),
            )),
        };
        match result {
            Ok(payload) => ok_response(verb, payload),
            Err((code, message)) => {
                mc_obs::counter!("mc.serve.errors").inc();
                crate::proto::error_response(verb, code, &message)
            }
        }
    }

    /// Number of resident sessions.
    pub fn resident_sessions(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// Summed estimated footprint of resident sessions, in bytes.
    pub fn resident_bytes(&self) -> usize {
        let slots = self.slots.lock().unwrap();
        slots
            .values()
            .map(|s| s.resident.load(Ordering::Relaxed))
            .sum()
    }

    fn touch(&self, slot: &Slot) {
        slot.last_used.store(
            self.clock.fetch_add(1, Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }

    fn slot(&self, id: u64) -> Result<Arc<Slot>, (ErrorCode, String)> {
        if let Some(slot) = self.slots.lock().unwrap().get(&id) {
            self.touch(slot);
            return Ok(Arc::clone(slot));
        }
        if self.evicted.lock().unwrap().contains(&id) {
            Err((
                ErrorCode::SessionEvicted,
                format!("session {id} was evicted (LRU / resident-byte budget); re-open it"),
            ))
        } else {
            Err((ErrorCode::UnknownSession, format!("no session {id}")))
        }
    }

    /// Locks a slot's state, converting a poisoned mutex (a panic during
    /// an earlier request left the session unusable) into an eviction.
    fn lock_inner<'s>(
        &self,
        slot: &'s Slot,
    ) -> Result<std::sync::MutexGuard<'s, SessionInner>, (ErrorCode, String)> {
        match slot.inner.lock() {
            Ok(g) => Ok(g),
            Err(_) => {
                self.slots.lock().unwrap().remove(&slot.id);
                self.evicted.lock().unwrap().insert(slot.id);
                Err((
                    ErrorCode::Internal,
                    format!(
                        "session {} is poisoned by a panic in an earlier request and has \
                         been discarded; re-open it",
                        slot.id
                    ),
                ))
            }
        }
    }

    /// Evicts LRU sessions until count and byte budgets hold. Never
    /// evicts `keep` (the session being served right now).
    fn enforce_budgets(&self, keep: u64) {
        loop {
            let victim = {
                let slots = self.slots.lock().unwrap();
                let total: usize = slots
                    .values()
                    .map(|s| s.resident.load(Ordering::Relaxed))
                    .sum();
                if slots.len() <= self.max_sessions && total <= self.max_resident_bytes {
                    return;
                }
                let lru = slots
                    .values()
                    .filter(|s| s.id != keep)
                    .min_by_key(|s| s.last_used.load(Ordering::Relaxed))
                    .map(|s| s.id);
                match lru {
                    Some(id) => id,
                    // Only the protected session is resident: over budget
                    // but nothing evictable.
                    None => return,
                }
            };
            let removed = self.slots.lock().unwrap().remove(&victim);
            if removed.is_some() {
                self.evicted.lock().unwrap().insert(victim);
                mc_obs::counter!("mc.serve.sessions.evicted").inc();
            }
        }
    }

    fn open(&self, source: &TableSource, overrides: OpenParams) -> VerbResult {
        let (a, b, killed, gold) = build_source(source)?;
        if a.is_empty() || b.is_empty() {
            return Err((
                ErrorCode::BadRequest,
                "empty table handle: both tables need at least one row".into(),
            ));
        }
        let mut params = DebuggerParams::small();
        if let Some(k) = overrides.k {
            params.joint.k = k;
        }
        params.joint.q = QStrategy::Fixed(overrides.q.unwrap_or(1));
        if let Some(m) = overrides.margin {
            params.incr.margin = m;
        }
        if let Some(t) = overrides.threads {
            params.joint.threads = t;
        }
        if let Some(n) = overrides.n_per_iter {
            params.verifier.n_per_iter = n;
        }
        let obs = ObsContext::session();
        params.obs = obs.clone();
        params.store = self.store_root.as_ref().map(StoreConfig::at);
        params
            .validate()
            .map_err(|e| (ErrorCode::BadRequest, format!("invalid params: {e}")))?;

        let mut oracle = SessionOracle {
            gold,
            overrides: HashMap::new(),
            labels: 0,
        };
        let catcher = MatchCatcher::new(params);
        let (session, report) = run_guarded(|| catcher.start_session(a, b, killed, &mut oracle))?;

        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let resident = session.resident_bytes();
        let slot = Arc::new(Slot {
            id,
            obs,
            last_used: AtomicU64::new(0),
            resident: AtomicUsize::new(resident),
            inner: Mutex::new(SessionInner {
                session,
                oracle,
                last: report,
                reruns: 0,
            }),
        });
        self.touch(&slot);
        let summary = report_summary(&slot.inner.lock().unwrap().last);
        self.slots.lock().unwrap().insert(id, slot);
        mc_obs::counter!("mc.serve.sessions.opened").inc();
        self.enforce_budgets(id);
        Ok(vec![
            ("proto".into(), PROTO_VERSION.into()),
            ("session".into(), id.into()),
            ("resident_bytes".into(), resident.into()),
            ("report".into(), summary),
        ])
    }

    fn rerun(
        &self,
        id: u64,
        delta_a: Option<&ReqDelta>,
        delta_b: Option<&ReqDelta>,
        killed: &ReqKilled,
    ) -> VerbResult {
        let slot = self.slot(id)?;
        let mut inner = self.lock_inner(&slot)?;
        let da = materialize(delta_a, inner.session.table_a(), 0x0a);
        let db = materialize(delta_b, inner.session.table_b(), 0x0b);
        let new_killed = match killed {
            ReqKilled::Keep => None,
            ReqKilled::Replace(pairs) => Some(pairs.iter().copied().collect::<PairSet>()),
            ReqKilled::Perturb {
                unkill_rate,
                kills,
                seed,
            } => {
                let n_a = inner.session.table_a().len() as u32;
                let n_b = inner.session.table_b().len() as u32;
                Some(mc_datagen::delta::perturb_killed(
                    inner.session.killed(),
                    n_a,
                    n_b,
                    *unkill_rate,
                    *kills,
                    &mut StdRng::seed_from_u64(*seed),
                ))
            }
        };
        let inner = &mut *inner;
        let report = run_guarded(|| inner.session.rerun(&da, &db, new_killed, &mut inner.oracle))?
            .map_err(|e| (ErrorCode::BadRequest, format!("invalid delta: {e}")))?;
        inner.last = report;
        inner.reruns += 1;
        let resident = inner.session.resident_bytes();
        slot.resident.store(resident, Ordering::Relaxed);
        let summary = report_summary(&inner.last);
        let reruns = inner.reruns;
        mc_obs::counter!("mc.serve.reruns").inc();
        self.enforce_budgets(id);
        Ok(vec![
            ("session".into(), id.into()),
            ("rerun".into(), reruns.into()),
            ("resident_bytes".into(), resident.into()),
            ("report".into(), summary),
        ])
    }

    fn page(&self, id: u64, offset: usize, limit: usize) -> VerbResult {
        let slot = self.slot(id)?;
        let inner = self.lock_inner(&slot)?;
        let total = inner.last.explanations.len();
        let schema = inner.session.table_a().schema().as_ref();
        let items: Vec<JsonValue> = inner
            .last
            .explanations
            .iter()
            .skip(offset)
            .take(limit)
            .map(|exp| explanation_json(exp, schema))
            .collect();
        Ok(vec![
            ("session".into(), id.into()),
            ("total".into(), total.into()),
            ("offset".into(), offset.into()),
            ("items".into(), JsonValue::Arr(items)),
        ])
    }

    /// Pages the batch explain output in `mc-explain/v1`: per-attribute
    /// diagnoses plus per-config score contributions and threshold gap.
    fn explain(&self, id: u64, offset: usize, limit: usize) -> VerbResult {
        let slot = self.slot(id)?;
        let inner = self.lock_inner(&slot)?;
        let total = inner.last.explanations.len();
        let schema = inner.session.table_a().schema().as_ref();
        let items: Vec<JsonValue> = (offset..total.min(offset + limit))
            .map(|i| explain_item_json(&inner.last, i, schema))
            .collect();
        mc_obs::counter!("mc.serve.explains").inc();
        Ok(vec![
            ("session".into(), id.into()),
            ("schema".into(), EXPLAIN_VERSION.into()),
            ("total".into(), total.into()),
            ("offset".into(), offset.into()),
            ("items".into(), JsonValue::Arr(items)),
        ])
    }

    /// Returns the pervasiveness aggregates: problem signatures over the
    /// full candidate union, each with its candidate-pair population and
    /// "kills N confirmed matches" count.
    fn pervade(&self, id: u64, limit: usize) -> VerbResult {
        let slot = self.slot(id)?;
        let inner = self.lock_inner(&slot)?;
        let schema = inner.session.table_a().schema().as_ref();
        let total = inner.last.pervasive.len();
        let groups: Vec<JsonValue> = inner
            .last
            .pervasive
            .iter()
            .take(limit)
            .map(|g| pervade_group_json(g, schema))
            .collect();
        mc_obs::counter!("mc.serve.pervades").inc();
        Ok(vec![
            ("session".into(), id.into()),
            ("schema".into(), EXPLAIN_VERSION.into()),
            ("union_size".into(), inner.last.e_size.into()),
            ("total".into(), total.into()),
            ("groups".into(), JsonValue::Arr(groups)),
        ])
    }

    /// Runs [`mc_store::Store::gc`] on the shared warm tier backing this
    /// daemon. Errors with `bad_request` when the daemon was started
    /// without a store root.
    fn gc(&self, max_bytes: u64) -> VerbResult {
        let root = self.store_root.as_ref().ok_or_else(|| {
            (
                ErrorCode::BadRequest,
                "no store configured: start the daemon with a store root to gc".into(),
            )
        })?;
        let store = mc_store::Store::open(&StoreConfig::at(root))
            .map_err(|e| (ErrorCode::Internal, format!("store open failed: {e}")))?;
        let report = store.gc(max_bytes);
        mc_obs::counter!("mc.serve.gcs").inc();
        Ok(vec![
            ("removed_files".into(), report.removed_files.into()),
            ("removed_bytes".into(), report.removed_bytes.into()),
            ("removed_tmp".into(), report.removed_tmp.into()),
            ("kept_bytes".into(), report.kept_bytes.into()),
            ("skipped_live".into(), report.skipped_live.into()),
        ])
    }

    fn label(&self, id: u64, a: TupleId, b: TupleId, is_match: bool) -> VerbResult {
        let slot = self.slot(id)?;
        let mut inner = self.lock_inner(&slot)?;
        inner.oracle.overrides.insert(pair_key(a, b), is_match);
        mc_obs::counter!("mc.serve.labels").inc();
        Ok(vec![
            ("session".into(), id.into()),
            ("pair".into(), pairs_json([(a, b)])),
            ("overrides".into(), inner.oracle.overrides.len().into()),
        ])
    }

    fn metrics(&self, id: u64) -> VerbResult {
        let slot = self.slot(id)?;
        let text = slot.obs.snapshot().to_json();
        let parsed = JsonValue::parse(&text)
            .map_err(|e| (ErrorCode::Internal, format!("snapshot did not parse: {e}")))?;
        Ok(vec![
            ("session".into(), id.into()),
            ("metrics".into(), parsed),
        ])
    }

    fn close(&self, id: u64) -> VerbResult {
        let removed = self.slots.lock().unwrap().remove(&id);
        match removed {
            Some(_) => {
                mc_obs::counter!("mc.serve.sessions.closed").inc();
                Ok(vec![
                    ("session".into(), id.into()),
                    ("closed".into(), true.into()),
                ])
            }
            None => self
                .slot(id)
                .map(|_| unreachable!("slot() must fail for a removed id")),
        }
    }
}

/// Runs pipeline work, converting a panic (invalid tables, internal
/// bugs) into a structured `internal` error instead of killing the
/// worker thread.
fn run_guarded<T>(f: impl FnOnce() -> T) -> Result<T, (ErrorCode, String)> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|p| {
        let msg = p
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| p.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "pipeline panicked".into());
        mc_obs::counter!("mc.serve.panics").inc();
        (ErrorCode::Internal, msg)
    })
}

/// Turns a wire delta into a concrete [`TableDelta`] against the
/// session's current table. `salt` decorrelates the A- and B-side RNG
/// streams when a load script uses one seed for both.
fn materialize(delta: Option<&ReqDelta>, table: &Table, salt: u64) -> TableDelta {
    match delta {
        None => TableDelta::default(),
        Some(ReqDelta::Explicit(d)) => d.clone(),
        Some(ReqDelta::Scripted { frac, seed }) => {
            let spec = DeltaSpec::fraction_of(table.len(), *frac);
            random_delta(table, spec, &mut StdRng::seed_from_u64(seed ^ salt))
        }
    }
}

/// Builds tables + killed set + gold from an `open` source.
fn build_source(
    source: &TableSource,
) -> Result<(Table, Table, PairSet, GoldMatches), (ErrorCode, String)> {
    match source {
        TableSource::Profile {
            name,
            scale,
            seed,
            blocker_attr,
        } => {
            let profile = DatasetProfile::ALL
                .into_iter()
                .find(|p| p.name() == name)
                .ok_or_else(|| {
                    (
                        ErrorCode::BadRequest,
                        format!(
                            "unknown profile {name:?}; one of: {}",
                            DatasetProfile::ALL.map(|p| p.name()).join(", ")
                        ),
                    )
                })?;
            if !(*scale > 0.0 && *scale <= 100.0) {
                return Err((
                    ErrorCode::BadRequest,
                    format!("scale {scale} out of (0, 100]"),
                ));
            }
            let ds = run_guarded(|| profile.generate_scaled(*seed, *scale))?;
            if *blocker_attr as usize >= ds.a.schema().len() {
                return Err((
                    ErrorCode::BadRequest,
                    format!(
                        "blocker_attr {blocker_attr} out of range for {} attributes",
                        ds.a.schema().len()
                    ),
                ));
            }
            let blocker = Blocker::Hash(KeyFunc::Attr(AttrId(*blocker_attr)));
            let killed = blocker.apply(&ds.a, &ds.b);
            Ok((ds.a, ds.b, killed, ds.gold))
        }
        TableSource::Inline {
            schema,
            rows_a,
            rows_b,
            killed,
            gold,
        } => {
            if schema.is_empty() {
                return Err((ErrorCode::BadRequest, "empty schema".into()));
            }
            if rows_a.is_empty() || rows_b.is_empty() {
                return Err((
                    ErrorCode::BadRequest,
                    "empty table handle: both tables need at least one row".into(),
                ));
            }
            let shared = std::sync::Arc::new(Schema::from_names(schema.iter().cloned()));
            let build = |name: &str, rows: &[Vec<Option<String>>]| {
                let mut t = Table::new(name, std::sync::Arc::clone(&shared));
                for (i, row) in rows.iter().enumerate() {
                    if row.len() != schema.len() {
                        return Err((
                            ErrorCode::BadRequest,
                            format!(
                                "row {i} of {name} has {} values for {} attributes",
                                row.len(),
                                schema.len()
                            ),
                        ));
                    }
                    t.push(Tuple::new(row.clone()));
                }
                Ok(t)
            };
            let a = build("a", rows_a)?;
            let b = build("b", rows_b)?;
            Ok((
                a,
                b,
                killed.iter().copied().collect(),
                GoldMatches::from_pairs(gold.iter().copied()),
            ))
        }
    }
}

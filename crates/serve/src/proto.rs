//! Request/response schema: typed views over the JSON frames.
//!
//! Requests are objects with a `"verb"` member; everything else is
//! verb-specific. Responses are `{"ok": true, "verb": ..., ...payload}`
//! or `{"ok": false, "verb": ..., "error": {"code", "message"}}`. Error
//! codes are a closed set ([`ErrorCode`]) so clients can switch on them
//! without string-matching messages.

use matchcatcher::explain::MatchExplanation;
use matchcatcher::DebugReport;
use mc_obs::JsonValue;
use mc_table::{RowEdit, Schema, TableDelta, Tuple, TupleId};

/// Protocol schema tag, included in `open` responses.
pub const PROTO_VERSION: &str = "mc-serve/v1";

/// Schema tag of the batch explain payloads (`explain` / `pervade`
/// responses): per-attribute diagnosis, per-config score contributions
/// and threshold gaps, signature aggregates.
pub const EXPLAIN_VERSION: &str = "mc-explain/v1";

/// Structured error codes carried in `"error": {"code": ...}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request was not parseable against the verb's schema.
    BadRequest,
    /// The session id was never issued (or already closed).
    UnknownSession,
    /// The session existed but was evicted (LRU / resident-byte budget).
    SessionEvicted,
    /// The work queue is full — retry with backoff.
    Busy,
    /// The request exceeded its deadline while queued.
    Timeout,
    /// The daemon is draining; no new work is accepted.
    ShuttingDown,
    /// The request failed while executing.
    Internal,
}

impl ErrorCode {
    /// The wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownSession => "unknown_session",
            ErrorCode::SessionEvicted => "session_evicted",
            ErrorCode::Busy => "busy",
            ErrorCode::Timeout => "timeout",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A table delta, as requested over the wire: either spelled out row by
/// row, or a deterministic generator spec the server materializes
/// against the session's *current* table (keeps load-generator frames
/// small while staying reproducible client-side).
#[derive(Debug, Clone)]
pub enum ReqDelta {
    /// Explicit updates/deletes/inserts.
    Explicit(TableDelta),
    /// `mc_datagen::delta::random_delta(table, fraction_of(rows, frac), seed)`.
    Scripted {
        /// Fraction of rows to touch.
        frac: f64,
        /// RNG seed.
        seed: u64,
    },
}

/// A killed-set change: replace outright, perturb deterministically, or
/// keep.
#[derive(Debug, Clone)]
pub enum ReqKilled {
    /// Keep the current killed set.
    Keep,
    /// Replace with exactly these pairs.
    Replace(Vec<(TupleId, TupleId)>),
    /// `mc_datagen::delta::perturb_killed(current, ...)`.
    Perturb {
        /// Probability of dropping each existing pair.
        unkill_rate: f64,
        /// Fresh random pairs to add.
        kills: usize,
        /// RNG seed.
        seed: u64,
    },
}

/// Where a session's tables come from.
#[derive(Debug, Clone)]
pub enum TableSource {
    /// A scaled `mc-datagen` profile; the killed set is a hash blocker
    /// on `blocker_attr` and the generator's gold matches back the
    /// labeling oracle.
    Profile {
        /// Profile name (`"fodors-zagats"`, ...).
        name: String,
        /// Table-size multiplier.
        scale: f64,
        /// Generator seed.
        seed: u64,
        /// Attribute the hash blocker keys on.
        blocker_attr: u16,
    },
    /// Inline tables: a shared schema, rows for both sides, an explicit
    /// killed set, and optional gold matches for the oracle.
    Inline {
        /// Attribute names (shared by both tables).
        schema: Vec<String>,
        /// Rows of table A (`null` = missing value).
        rows_a: Vec<Vec<Option<String>>>,
        /// Rows of table B.
        rows_b: Vec<Vec<Option<String>>>,
        /// Killed pairs.
        killed: Vec<(TupleId, TupleId)>,
        /// Gold matches backing the oracle (absent → only labels).
        gold: Vec<(TupleId, TupleId)>,
    },
}

/// Pipeline parameter overrides accepted by `open`, applied over
/// `DebuggerParams::small()`.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpenParams {
    /// Per-config top-k list size.
    pub k: Option<usize>,
    /// Fixed QJoin `q` (sessions reject `Auto`).
    pub q: Option<usize>,
    /// Incremental maintenance margin.
    pub margin: Option<usize>,
    /// Joint-stage worker threads.
    pub threads: Option<usize>,
    /// Verifier pairs shown per iteration.
    pub n_per_iter: Option<usize>,
}

/// A parsed request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Open a session.
    Open {
        /// Table source.
        source: TableSource,
        /// Parameter overrides.
        params: OpenParams,
    },
    /// Delta rerun against an open session.
    Rerun {
        /// Session id from `open`.
        session: u64,
        /// Delta for table A.
        delta_a: Option<ReqDelta>,
        /// Delta for table B.
        delta_b: Option<ReqDelta>,
        /// Killed-set change.
        killed: ReqKilled,
    },
    /// Page through the last report's killed matches + explanations.
    Page {
        /// Session id.
        session: u64,
        /// First match index.
        offset: usize,
        /// Maximum matches returned.
        limit: usize,
    },
    /// Record a user label for a pair (overrides gold for future
    /// verifier iterations).
    Label {
        /// Session id.
        session: u64,
        /// Left tuple.
        a: TupleId,
        /// Right tuple.
        b: TupleId,
        /// The label.
        is_match: bool,
    },
    /// Batch explain: page through the last report's explanations in
    /// the `mc-explain/v1` schema (per-attribute diagnosis, per-config
    /// score contributions, threshold gap).
    Explain {
        /// Session id.
        session: u64,
        /// First explanation index.
        offset: usize,
        /// Maximum explanations returned.
        limit: usize,
    },
    /// Pervasiveness aggregates over the full candidate union: problem
    /// signatures with pair counts and "this problem kills N matches"
    /// confirmed counts.
    Pervade {
        /// Session id.
        session: u64,
        /// Maximum groups returned (most pervasive first).
        limit: usize,
    },
    /// Run [`mc_store::Store::gc`] on the daemon's shared warm tier.
    Gc {
        /// Byte budget the store is trimmed down to.
        max_bytes: u64,
    },
    /// The session's metrics snapshot.
    Metrics {
        /// Session id.
        session: u64,
    },
    /// Close a session.
    Close {
        /// Session id.
        session: u64,
    },
    /// Drain and stop the daemon.
    Shutdown,
}

impl Request {
    /// The verb string (echoed in responses).
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Open { .. } => "open",
            Request::Rerun { .. } => "rerun",
            Request::Page { .. } => "page",
            Request::Explain { .. } => "explain",
            Request::Pervade { .. } => "pervade",
            Request::Gc { .. } => "gc",
            Request::Label { .. } => "label",
            Request::Metrics { .. } => "metrics",
            Request::Close { .. } => "close",
            Request::Shutdown => "shutdown",
        }
    }
}

fn want_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-integer {key:?}"))
}

fn opt_usize(v: &JsonValue, key: &str) -> Result<Option<usize>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(|n| Some(n as usize))
            .ok_or_else(|| format!("non-integer {key:?}")),
    }
}

fn want_f64(v: &JsonValue, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing or non-numeric {key:?}"))
}

fn pair_list(v: &JsonValue, key: &str) -> Result<Vec<(TupleId, TupleId)>, String> {
    let Some(arr) = v.get(key).and_then(JsonValue::as_array) else {
        return Err(format!("missing or non-array {key:?}"));
    };
    arr.iter()
        .map(|p| {
            let pair = p.as_array().filter(|a| a.len() == 2);
            let (x, y) = pair
                .and_then(|a| Some((a[0].as_u64()?, a[1].as_u64()?)))
                .ok_or_else(|| format!("{key:?} entries must be [a, b] id pairs"))?;
            Ok((x as TupleId, y as TupleId))
        })
        .collect()
}

fn values_row(v: &JsonValue) -> Result<Vec<Option<String>>, String> {
    let Some(arr) = v.as_array() else {
        return Err("rows must be arrays of values".into());
    };
    arr.iter()
        .map(|cell| match cell {
            JsonValue::Null => Ok(None),
            JsonValue::Str(s) => Ok(Some(s.clone())),
            _ => Err("cell values must be strings or null".into()),
        })
        .collect()
}

fn parse_delta(v: &JsonValue, key: &str) -> Result<Option<ReqDelta>, String> {
    let Some(d) = v.get(key) else {
        return Ok(None);
    };
    if matches!(d, JsonValue::Null) {
        return Ok(None);
    }
    if let Some(spec) = d.get("spec") {
        return Ok(Some(ReqDelta::Scripted {
            frac: want_f64(spec, "frac")?,
            seed: want_u64(spec, "seed")?,
        }));
    }
    let updates = match d.get("updates").and_then(JsonValue::as_array) {
        Some(ups) => ups
            .iter()
            .map(|u| {
                let id = want_u64(u, "id")? as TupleId;
                let values = u
                    .get("values")
                    .ok_or("update entries need \"values\"")
                    .and_then(|v| values_row(v).map_err(|_| "bad update values"))
                    .map_err(String::from)?;
                Ok(RowEdit {
                    id,
                    tuple: Tuple::new(values),
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
        None => Vec::new(),
    };
    let deletes = match d.get("deletes").and_then(JsonValue::as_array) {
        Some(ds) => ds
            .iter()
            .map(|x| {
                x.as_u64()
                    .map(|n| n as TupleId)
                    .ok_or_else(|| "deletes must be tuple ids".to_string())
            })
            .collect::<Result<Vec<_>, String>>()?,
        None => Vec::new(),
    };
    let inserts = match d.get("inserts").and_then(JsonValue::as_array) {
        Some(ins) => ins
            .iter()
            .map(|row| values_row(row).map(Tuple::new))
            .collect::<Result<Vec<_>, String>>()?,
        None => Vec::new(),
    };
    Ok(Some(ReqDelta::Explicit(TableDelta {
        updates,
        deletes,
        inserts,
    })))
}

/// Parses one request frame.
pub fn parse_request(v: &JsonValue) -> Result<Request, String> {
    let verb = v
        .get("verb")
        .and_then(JsonValue::as_str)
        .ok_or("missing \"verb\"")?;
    match verb {
        "open" => {
            let params = OpenParams {
                k: opt_usize(v, "k")?,
                q: opt_usize(v, "q")?,
                margin: opt_usize(v, "margin")?,
                threads: opt_usize(v, "threads")?,
                n_per_iter: opt_usize(v, "n_per_iter")?,
            };
            let source = if let Some(profile) = v.get("profile") {
                TableSource::Profile {
                    name: profile
                        .as_str()
                        .ok_or("\"profile\" must be a name string")?
                        .to_string(),
                    scale: want_f64(v, "scale")?,
                    seed: want_u64(v, "seed")?,
                    blocker_attr: want_u64(v, "blocker_attr")? as u16,
                }
            } else if let Some(tables) = v.get("tables") {
                let schema = tables
                    .get("schema")
                    .and_then(JsonValue::as_array)
                    .ok_or("\"tables.schema\" must be an array of names")?
                    .iter()
                    .map(|s| {
                        s.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| "schema names must be strings".to_string())
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let rows = |key: &str| -> Result<Vec<Vec<Option<String>>>, String> {
                    tables
                        .get(key)
                        .and_then(JsonValue::as_array)
                        .ok_or_else(|| format!("\"tables.{key}\" must be an array of rows"))?
                        .iter()
                        .map(values_row)
                        .collect()
                };
                TableSource::Inline {
                    schema,
                    rows_a: rows("a")?,
                    rows_b: rows("b")?,
                    killed: pair_list(v, "killed")?,
                    gold: if v.get("gold").is_some() {
                        pair_list(v, "gold")?
                    } else {
                        Vec::new()
                    },
                }
            } else {
                return Err("open needs either \"profile\" or \"tables\"".into());
            };
            Ok(Request::Open { source, params })
        }
        "rerun" => {
            let killed = if v.get("killed").is_some() {
                ReqKilled::Replace(pair_list(v, "killed")?)
            } else if let Some(p) = v.get("perturb_killed") {
                ReqKilled::Perturb {
                    unkill_rate: want_f64(p, "unkill_rate")?,
                    kills: want_u64(p, "kills")? as usize,
                    seed: want_u64(p, "seed")?,
                }
            } else {
                ReqKilled::Keep
            };
            Ok(Request::Rerun {
                session: want_u64(v, "session")?,
                delta_a: parse_delta(v, "delta_a")?,
                delta_b: parse_delta(v, "delta_b")?,
                killed,
            })
        }
        "page" => Ok(Request::Page {
            session: want_u64(v, "session")?,
            offset: opt_usize(v, "offset")?.unwrap_or(0),
            limit: opt_usize(v, "limit")?.unwrap_or(20),
        }),
        "explain" => Ok(Request::Explain {
            session: want_u64(v, "session")?,
            offset: opt_usize(v, "offset")?.unwrap_or(0),
            limit: opt_usize(v, "limit")?.unwrap_or(20),
        }),
        "pervade" => Ok(Request::Pervade {
            session: want_u64(v, "session")?,
            limit: opt_usize(v, "limit")?.unwrap_or(20),
        }),
        "gc" => Ok(Request::Gc {
            max_bytes: want_u64(v, "max_bytes")?,
        }),
        "label" => {
            let pair = pair_list(v, "pair").and_then(|p| {
                (p.len() == 1)
                    .then(|| p[0])
                    .ok_or_else(|| "\"pair\" must be one [a, b] pair".to_string())
            });
            // Accept both {"pair": [[a,b]]} and {"a": ..., "b": ...}.
            let (a, b) = match pair {
                Ok(p) => p,
                Err(_) => (want_u64(v, "a")? as TupleId, want_u64(v, "b")? as TupleId),
            };
            Ok(Request::Label {
                session: want_u64(v, "session")?,
                a,
                b,
                is_match: v
                    .get("is_match")
                    .and_then(JsonValue::as_bool)
                    .ok_or("missing or non-boolean \"is_match\"")?,
            })
        }
        "metrics" => Ok(Request::Metrics {
            session: want_u64(v, "session")?,
        }),
        "close" => Ok(Request::Close {
            session: want_u64(v, "session")?,
        }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown verb {other:?}")),
    }
}

/// The `{"ok": true}` response envelope with a verb echo and payload
/// members appended.
pub fn ok_response(verb: &str, payload: Vec<(String, JsonValue)>) -> JsonValue {
    let mut members: Vec<(String, JsonValue)> =
        vec![("ok".into(), true.into()), ("verb".into(), verb.into())];
    members.extend(payload);
    JsonValue::Obj(members)
}

/// The `{"ok": false}` envelope with a structured error.
pub fn error_response(verb: &str, code: ErrorCode, message: &str) -> JsonValue {
    JsonValue::Obj(vec![
        ("ok".into(), false.into()),
        ("verb".into(), verb.into()),
        (
            "error".into(),
            JsonValue::Obj(vec![
                ("code".into(), code.as_str().into()),
                ("message".into(), message.into()),
            ]),
        ),
    ])
}

/// Serializes pairs as `[[a, b], ...]`.
pub fn pairs_json(pairs: impl IntoIterator<Item = (TupleId, TupleId)>) -> JsonValue {
    JsonValue::Arr(
        pairs
            .into_iter()
            .map(|(a, b)| JsonValue::Arr(vec![(a as u64).into(), (b as u64).into()]))
            .collect(),
    )
}

/// The result-bearing report fields as a deterministic JSON object —
/// the identity surface: a warm `rerun` summary must be byte-identical
/// to the summary of a cold `MatchCatcher::run` on the patched tables
/// (metrics are deliberately excluded; they differ by construction).
pub fn report_summary(report: &DebugReport) -> JsonValue {
    JsonValue::Obj(vec![
        (
            "confirmed".into(),
            pairs_json(report.confirmed_matches.iter().copied()),
        ),
        ("e_size".into(), report.e_size.into()),
        ("q_used".into(), report.q_used.into()),
        ("labeled".into(), report.labeled.into()),
        (
            "iterations".into(),
            JsonValue::Arr(
                report
                    .iterations
                    .iter()
                    .map(|it| {
                        JsonValue::Obj(vec![
                            ("shown".into(), it.shown.into()),
                            ("matches_found".into(), it.matches_found.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "problems".into(),
            JsonValue::Arr(
                report
                    .problems
                    .iter()
                    .map(|(text, n)| JsonValue::Arr(vec![text.as_str().into(), (*n).into()]))
                    .collect(),
            ),
        ),
    ])
}

/// One killed match + its per-attribute explain payload, for `page`.
pub fn explanation_json(exp: &MatchExplanation, schema: &Schema) -> JsonValue {
    JsonValue::Obj(vec![
        (
            "pair".into(),
            JsonValue::Arr(vec![(exp.pair.0 as u64).into(), (exp.pair.1 as u64).into()]),
        ),
        (
            "attrs".into(),
            JsonValue::Arr(
                exp.per_attr
                    .iter()
                    .map(|&(attr, diag)| {
                        JsonValue::Obj(vec![
                            ("attr".into(), (attr.0 as u64).into()),
                            ("name".into(), schema.name(attr).into()),
                            ("diagnosis".into(), diag.label().into_owned().into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// One explanation in the `mc-explain/v1` schema: the per-attribute
/// diagnoses of [`explanation_json`] plus an `agreement` flag per
/// attribute and, per config, the pair's score contribution, the
/// config's top-k floor, and the gap above it.
pub fn explain_item_json(report: &DebugReport, idx: usize, schema: &Schema) -> JsonValue {
    let exp = &report.explanations[idx];
    let attrs = JsonValue::Arr(
        exp.per_attr
            .iter()
            .map(|&(attr, diag)| {
                JsonValue::Obj(vec![
                    ("attr".into(), (attr.0 as u64).into()),
                    ("name".into(), schema.name(attr).into()),
                    ("diagnosis".into(), diag.label().into_owned().into()),
                    ("agreement".into(), diag.is_agreement().into()),
                ])
            })
            .collect(),
    );
    let opt_num = |v: Option<f64>| match v {
        Some(x) => JsonValue::Num(x),
        None => JsonValue::Null,
    };
    let scores = JsonValue::Arr(
        report
            .configs
            .iter()
            .enumerate()
            .map(|(c, config)| {
                let attrs_label = config
                    .positions()
                    .iter()
                    .filter_map(|&p| report.promising.get(p))
                    .map(|&a| schema.name(a).to_string())
                    .collect::<Vec<_>>()
                    .join("+");
                let score = report
                    .explanation_scores
                    .get(idx)
                    .and_then(|s| s.get(c).copied().flatten());
                let floor = report.config_floors.get(c).copied().flatten();
                let gap = match (score, floor) {
                    (Some(s), Some(f)) => Some(s - f),
                    _ => None,
                };
                JsonValue::Obj(vec![
                    ("config".into(), (c as u64).into()),
                    ("attrs".into(), attrs_label.into()),
                    ("score".into(), opt_num(score)),
                    ("floor".into(), opt_num(floor)),
                    ("gap".into(), opt_num(gap)),
                ])
            })
            .collect(),
    );
    JsonValue::Obj(vec![
        (
            "pair".into(),
            JsonValue::Arr(vec![(exp.pair.0 as u64).into(), (exp.pair.1 as u64).into()]),
        ),
        ("attrs".into(), attrs),
        ("scores".into(), scores),
    ])
}

/// One pervasiveness group in the `mc-explain/v1` schema: the shared
/// problem signature, how many candidate pairs exhibit it, and how many
/// confirmed killed-off matches it kills.
pub fn pervade_group_json(
    group: &matchcatcher::pervasive::ProblemGroup,
    schema: &Schema,
) -> JsonValue {
    JsonValue::Obj(vec![
        ("signature".into(), group.signature.describe(schema).into()),
        (
            "problems".into(),
            JsonValue::Arr(
                group
                    .signature
                    .problems()
                    .iter()
                    .map(|&(attr, class)| {
                        JsonValue::Obj(vec![
                            ("attr".into(), (attr.0 as u64).into()),
                            ("name".into(), schema.name(attr).into()),
                            ("class".into(), class.label().into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("pairs".into(), group.pairs.len().into()),
        ("kills".into(), group.confirmed.into()),
        (
            "sample".into(),
            pairs_json(group.pairs.iter().copied().take(3)),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Request, String> {
        parse_request(&JsonValue::parse(text).unwrap())
    }

    #[test]
    fn parses_profile_open() {
        let req = parse(
            r#"{"verb":"open","profile":"fodors-zagats","scale":0.4,"seed":11,
                "blocker_attr":0,"k":50,"q":1,"margin":16}"#,
        )
        .unwrap();
        let Request::Open { source, params } = req else {
            panic!("not an open");
        };
        let TableSource::Profile {
            name,
            scale,
            seed,
            blocker_attr,
        } = source
        else {
            panic!("not a profile source");
        };
        assert_eq!(
            (name.as_str(), scale, seed, blocker_attr),
            ("fodors-zagats", 0.4, 11, 0)
        );
        assert_eq!(
            (params.k, params.q, params.margin),
            (Some(50), Some(1), Some(16))
        );
        assert_eq!(params.n_per_iter, None);
    }

    #[test]
    fn parses_inline_open_and_rerun_deltas() {
        let req = parse(
            r#"{"verb":"open",
                "tables":{"schema":["name","city"],
                          "a":[["Dave","LA"],[null,"NY"]],
                          "b":[["Dav","LA"]]},
                "killed":[[0,0]],"gold":[[0,0]]}"#,
        )
        .unwrap();
        let Request::Open {
            source:
                TableSource::Inline {
                    schema,
                    rows_a,
                    rows_b,
                    killed,
                    gold,
                },
            ..
        } = req
        else {
            panic!("not an inline open");
        };
        assert_eq!(schema, vec!["name", "city"]);
        assert_eq!(rows_a[1][0], None);
        assert_eq!(rows_b.len(), 1);
        assert_eq!(killed, vec![(0, 0)]);
        assert_eq!(gold, vec![(0, 0)]);

        let req = parse(
            r#"{"verb":"rerun","session":3,
                "delta_a":{"updates":[{"id":1,"values":["x",null]}],"deletes":[0]},
                "delta_b":{"spec":{"frac":0.05,"seed":9}},
                "killed":[[1,0]]}"#,
        )
        .unwrap();
        let Request::Rerun {
            session,
            delta_a,
            delta_b,
            killed,
        } = req
        else {
            panic!("not a rerun");
        };
        assert_eq!(session, 3);
        let Some(ReqDelta::Explicit(da)) = delta_a else {
            panic!("explicit delta expected");
        };
        assert_eq!(da.updates.len(), 1);
        assert_eq!(da.deletes, vec![0]);
        assert!(matches!(
            delta_b,
            Some(ReqDelta::Scripted { frac, seed: 9 }) if frac == 0.05
        ));
        assert!(matches!(killed, ReqKilled::Replace(p) if p == vec![(1, 0)]));
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            r#"{"no_verb":1}"#,
            r#"{"verb":"nope"}"#,
            r#"{"verb":"open"}"#,
            r#"{"verb":"open","profile":"x","scale":0.1}"#,
            r#"{"verb":"rerun"}"#,
            r#"{"verb":"label","session":1,"a":0,"b":1}"#,
            r#"{"verb":"page"}"#,
            r#"{"verb":"explain"}"#,
            r#"{"verb":"pervade"}"#,
            r#"{"verb":"gc"}"#,
        ] {
            assert!(parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn parses_explain_pervade_gc() {
        let req = parse(r#"{"verb":"explain","session":3,"offset":10,"limit":5}"#).unwrap();
        assert!(matches!(
            req,
            Request::Explain {
                session: 3,
                offset: 10,
                limit: 5
            }
        ));
        // Paging defaults: offset 0, limit 20.
        let req = parse(r#"{"verb":"explain","session":3}"#).unwrap();
        assert!(matches!(
            req,
            Request::Explain {
                session: 3,
                offset: 0,
                limit: 20
            }
        ));
        let req = parse(r#"{"verb":"pervade","session":8}"#).unwrap();
        assert!(matches!(
            req,
            Request::Pervade {
                session: 8,
                limit: 20
            }
        ));
        let req = parse(r#"{"verb":"gc","max_bytes":4096}"#).unwrap();
        assert!(matches!(req, Request::Gc { max_bytes: 4096 }));
        assert_eq!(req.verb(), "gc");
    }

    #[test]
    fn envelopes_round_trip() {
        let ok = ok_response("open", vec![("session".into(), 7u64.into())]);
        assert_eq!(ok.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(ok.get("session").unwrap().as_u64(), Some(7));
        let err = error_response("rerun", ErrorCode::Busy, "queue full");
        assert_eq!(err.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(
            err.get("error").unwrap().get("code").unwrap().as_str(),
            Some("busy")
        );
        let text = err.to_json_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), err);
    }
}

#![warn(missing_docs)]

//! # mc-serve
//!
//! A persistent MatchCatcher debug daemon (`mcd` / `mc serve`): the
//! paper's *interactive* debugging loop as a long-running service
//! instead of a one-shot `MatchCatcher::run` per interaction.
//!
//! The daemon is **std-only** (no async runtime — the workspace is
//! offline): a [`std::net::TcpListener`] accept loop, one lightweight
//! reader thread per connection, and a bounded worker pool with a
//! backpressure queue executing requests. Each client session wraps a
//! [`matchcatcher::DebugSession`], so blocker-output / killed-set /
//! label edits are **delta reruns** against resident state instead of
//! cold runs; warm artifacts (tokenizations, zero-copy mmap arenas,
//! candidate unions) load through `mc-store` when the daemon is given a
//! store root; and every session attaches its own
//! [`mc_obs::ObsContext::session`], so the `metrics` verb returns
//! exactly that session's activity.
//!
//! ## Wire protocol
//!
//! Length-prefixed JSON frames ([`frame`]): a 4-byte little-endian
//! payload length, then that many bytes of UTF-8 JSON, serialized with
//! [`mc_obs::JsonValue::to_json_string`] — the same emitter the
//! `obs-report` snapshots use. Requests are objects with a `"verb"`
//! member; responses carry `"ok"` plus either the verb's payload or a
//! structured `"error": {"code", "message"}` ([`proto`]). Verbs:
//!
//! | verb       | request                                      | response |
//! |------------|----------------------------------------------|----------|
//! | `open`     | tables (profile or inline) + params          | session id + report summary |
//! | `rerun`    | table deltas + killed diff                   | report summary |
//! | `page`     | session + offset/limit                       | killed-match page with explain payloads |
//! | `label`    | session + pair + is_match                    | labels recorded |
//! | `metrics`  | session                                      | the session's `mc-obs/v2` snapshot |
//! | `close`    | session                                      | freed |
//! | `shutdown` | —                                            | daemon drains and exits |
//!
//! Sessions are evicted LRU when the resident-byte budget or session
//! cap is exceeded ([`session`]); a full queue answers `busy`
//! immediately; queued requests that exceed their deadline answer
//! `timeout` without executing. See DESIGN.md §"Debug service" for the
//! lifecycle state machine.

pub mod cli;
pub mod client;
pub mod frame;
pub mod proto;
pub mod server;
pub mod session;

pub use client::Client;
pub use server::{Daemon, DaemonHandle};
pub use session::SessionManager;

use std::path::PathBuf;

/// Daemon tuning knobs, validated by [`ServeParams::validate`] the same
/// way `DebuggerParams::validate` guards the pipeline's.
#[derive(Debug, Clone)]
pub struct ServeParams {
    /// Bind address. Port 0 picks an ephemeral port (the bound address
    /// is reported by [`DaemonHandle::addr`]).
    pub addr: String,
    /// Worker threads executing requests. Connection reader threads are
    /// extra and cheap (they block on their socket).
    pub workers: usize,
    /// Backpressure bound: requests queued beyond this answer `busy`
    /// immediately instead of waiting.
    pub queue_depth: usize,
    /// Largest accepted (and emitted) frame payload, in bytes. A client
    /// announcing a larger frame gets a structured error and the
    /// connection closes (the stream cannot be resynchronized).
    pub max_frame_bytes: usize,
    /// Resident session cap: opening session `n + 1` evicts the least
    /// recently used.
    pub max_sessions: usize,
    /// Eviction budget over the *estimated* resident bytes of all
    /// sessions (`DebugSession::resident_bytes`); exceeded → LRU
    /// sessions are evicted until under budget.
    pub max_resident_bytes: usize,
    /// Per-request deadline in milliseconds: time a request may spend
    /// *queued* before it answers `timeout` instead of executing; also
    /// the socket write timeout and the stall bound for a half-read
    /// frame. Execution itself is not preempted (no async runtime) —
    /// see DESIGN.md.
    pub request_timeout_ms: u64,
    /// Warm artifact tier shared by every session: when set, sessions
    /// open with `DebuggerParams::store = StoreConfig::at(root)`, so
    /// tokenization-compatible arenas memory-map in from prior runs and
    /// cold builds publish for the next session.
    pub store_root: Option<PathBuf>,
}

impl Default for ServeParams {
    fn default() -> Self {
        ServeParams {
            addr: "127.0.0.1:0".into(),
            workers: std::thread::available_parallelism().map_or(4, |p| p.get().min(8)),
            queue_depth: 64,
            max_frame_bytes: 8 << 20,
            max_sessions: 64,
            max_resident_bytes: 512 << 20,
            request_timeout_ms: 30_000,
            store_root: None,
        }
    }
}

impl ServeParams {
    /// Rejects configurations that would make the daemon degenerate,
    /// mirroring `DebuggerParams::validate` for the serving layer.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("workers = 0: no thread would ever execute a request".into());
        }
        if self.workers > 1024 {
            return Err(format!(
                "workers = {}: far beyond any machine this serves on (max 1024)",
                self.workers
            ));
        }
        if self.queue_depth == 0 {
            return Err("queue_depth = 0: every request would answer busy".into());
        }
        if self.queue_depth > 1 << 16 {
            return Err(format!(
                "queue_depth = {}: an unbounded-in-practice queue defeats \
                 backpressure (max 65536)",
                self.queue_depth
            ));
        }
        if self.max_frame_bytes < 1024 {
            return Err(format!(
                "max_frame_bytes = {}: even an empty report summary does not \
                 fit (min 1024)",
                self.max_frame_bytes
            ));
        }
        if self.max_frame_bytes > 1 << 30 {
            return Err(format!(
                "max_frame_bytes = {}: a single frame above 1 GiB is a \
                 memory-exhaustion vector, not a workload",
                self.max_frame_bytes
            ));
        }
        if self.max_sessions == 0 {
            return Err("max_sessions = 0: no session could ever be opened".into());
        }
        if self.max_resident_bytes == 0 {
            return Err("max_resident_bytes = 0: every session would be evicted \
                        the moment it opened"
                .into());
        }
        if self.request_timeout_ms == 0 {
            return Err("request_timeout_ms = 0: every queued request would time \
                        out before a worker could claim it"
                .into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_validate() {
        assert!(ServeParams::default().validate().is_ok());
    }

    #[test]
    fn degenerate_params_are_rejected() {
        for mutate in [
            (|p: &mut ServeParams| p.workers = 0) as fn(&mut ServeParams),
            |p| p.workers = 2048,
            |p| p.queue_depth = 0,
            |p| p.queue_depth = 1 << 20,
            |p| p.max_frame_bytes = 16,
            |p| p.max_frame_bytes = 2 << 30,
            |p| p.max_sessions = 0,
            |p| p.max_resident_bytes = 0,
            |p| p.request_timeout_ms = 0,
        ] {
            let mut p = ServeParams::default();
            mutate(&mut p);
            assert!(p.validate().is_err());
        }
    }
}

//! Prefix-filtering arithmetic for threshold joins.
//!
//! For a similarity threshold `t`, two records can only reach `t` if their
//! *prefixes* (the first few tokens under the global rare-first order)
//! intersect \[36\]. This module computes, per measure:
//!
//! * the minimum overlap two records of lengths `la`, `lb` need;
//! * the admissible length range of a join partner;
//! * the prefix length of a record.
//!
//! All formulas are for multiset semantics with cardinalities `la`, `lb`.

use crate::measures::SetMeasure;

/// Minimum overlap required for `measure(x, y) ≥ t` given `|x| = la` and
/// `|y| = lb` (rounded up; at least 1 for any positive threshold).
pub fn min_overlap(measure: SetMeasure, t: f64, la: usize, lb: usize) -> usize {
    let (la_f, lb_f) = (la as f64, lb as f64);
    let raw = match measure {
        // o/(la+lb-o) ≥ t  ⇔  o ≥ t(la+lb)/(1+t)
        SetMeasure::Jaccard => t * (la_f + lb_f) / (1.0 + t),
        // o ≥ t·sqrt(la·lb)
        SetMeasure::Cosine => t * (la_f * lb_f).sqrt(),
        // 2o/(la+lb) ≥ t ⇔ o ≥ t(la+lb)/2
        SetMeasure::Dice => t * (la_f + lb_f) / 2.0,
        // o ≥ t·min(la,lb)
        SetMeasure::Overlap => t * la.min(lb) as f64,
    };
    // ceil with tolerance for floating point error
    let c = (raw - 1e-9).ceil();
    (c.max(1.0)) as usize
}

/// Inclusive bounds `[lo, hi]` on the length of a partner `y` such that
/// `measure(x, y) ≥ t` is possible for `|x| = la`. `hi == usize::MAX`
/// encodes "unbounded" (overlap coefficient).
pub fn length_bounds(measure: SetMeasure, t: f64, la: usize) -> (usize, usize) {
    if t <= 0.0 {
        return (0, usize::MAX);
    }
    let la_f = la as f64;
    match measure {
        // t·la ≤ lb ≤ la/t
        SetMeasure::Jaccard => (
            ((t * la_f) - 1e-9).ceil() as usize,
            ((la_f / t) + 1e-9).floor() as usize,
        ),
        // t²·la ≤ lb ≤ la/t²
        SetMeasure::Cosine => (
            ((t * t * la_f) - 1e-9).ceil() as usize,
            ((la_f / (t * t)) + 1e-9).floor() as usize,
        ),
        // Dice: o ≤ min(la,lb); 2·min/(la+lb) ≥ t requires
        // lb ≥ la·t/(2−t) and lb ≤ la·(2−t)/t.
        SetMeasure::Dice => (
            ((la_f * t / (2.0 - t)) - 1e-9).ceil() as usize,
            ((la_f * (2.0 - t) / t) + 1e-9).floor() as usize,
        ),
        // Overlap coefficient: any partner of length ≥ 1 can reach 1.0.
        SetMeasure::Overlap => (1, usize::MAX),
    }
}

/// Prefix length of a record of length `la` for threshold `t`: probing or
/// indexing only the first `prefix_len` tokens is lossless \[36\].
///
/// Derivation: a pair can be missed only if its overlap is entirely
/// outside the prefix, i.e. overlap ≤ la − prefix_len; choosing
/// `prefix_len = la − o_min(la, lb_min) + 1` guarantees discovery, where
/// `lb_min` is the smallest admissible partner length.
pub fn prefix_len(measure: SetMeasure, t: f64, la: usize) -> usize {
    if la == 0 {
        return 0;
    }
    if t <= 0.0 {
        return la;
    }
    let o_min = match measure {
        // Using lb ≥ t·la: o ≥ t(la + t·la)/(1+t) = t·la.
        SetMeasure::Jaccard => ((t * la as f64) - 1e-9).ceil() as usize,
        // Using lb ≥ t²·la: o ≥ t·sqrt(la·t²·la) = t²·la.
        SetMeasure::Cosine => ((t * t * la as f64) - 1e-9).ceil() as usize,
        // Using lb ≥ la·t/(2−t): o ≥ t(la + la·t/(2−t))/2 = la·t/(2−t).
        SetMeasure::Dice => ((la as f64 * t / (2.0 - t)) - 1e-9).ceil() as usize,
        // Overlap coefficient: a partner of length 1 needs o ≥ ceil(t) = 1,
        // so the prefix must be the whole record.
        SetMeasure::Overlap => 1,
    };
    la - o_min.clamp(1, la) + 1
}

/// Prefix length for an **absolute overlap** threshold `c` (the OL blocker
/// `overlap(x, y) ≥ c`): `la − c + 1`, clamped to `[0, la]`.
pub fn overlap_prefix_len(c: usize, la: usize) -> usize {
    if la == 0 {
        return 0;
    }
    la.saturating_sub(c.max(1)) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::multiset_overlap;

    #[test]
    fn jaccard_min_overlap() {
        // t = 0.5, la = lb = 4: o ≥ 0.5·8/1.5 = 2.67 → 3.
        assert_eq!(min_overlap(SetMeasure::Jaccard, 0.5, 4, 4), 3);
        // Exactly-threshold pairs must be admitted: jac([1,2,3],[1,2,4]) = 0.5
        assert_eq!(min_overlap(SetMeasure::Jaccard, 0.5, 3, 3), 2);
    }

    #[test]
    fn length_bounds_jaccard() {
        let (lo, hi) = length_bounds(SetMeasure::Jaccard, 0.5, 10);
        assert_eq!((lo, hi), (5, 20));
    }

    #[test]
    fn prefix_len_jaccard() {
        // t = 0.8, la = 10: o_min = 8 → prefix 3.
        assert_eq!(prefix_len(SetMeasure::Jaccard, 0.8, 10), 3);
        // t → 0 keeps the whole record.
        assert_eq!(prefix_len(SetMeasure::Jaccard, 0.0, 10), 10);
    }

    #[test]
    fn prefix_is_lossless_exhaustive() {
        // Brute-force check: for random-ish small multisets, any pair with
        // score ≥ t shares a token within both prefixes.
        let records: Vec<Vec<u32>> = vec![
            vec![1, 2, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 4, 5, 6],
            vec![1, 5, 6],
            vec![7, 8],
            vec![1, 2, 3, 4, 5, 6, 7, 8],
        ];
        for m in [SetMeasure::Jaccard, SetMeasure::Cosine, SetMeasure::Dice] {
            for t in [0.3, 0.5, 0.7, 0.9] {
                for x in &records {
                    for y in &records {
                        if m.score(x, y) >= t {
                            let px = prefix_len(m, t, x.len());
                            let py = prefix_len(m, t, y.len());
                            let shared = multiset_overlap(&x[..px], &y[..py]);
                            assert!(shared > 0, "{m:?} t={t} x={x:?} y={y:?} px={px} py={py}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn overlap_prefix() {
        assert_eq!(overlap_prefix_len(3, 10), 8);
        assert_eq!(overlap_prefix_len(1, 5), 5);
        assert_eq!(overlap_prefix_len(10, 5), 1); // c > la: single-token prefix
        assert_eq!(overlap_prefix_len(2, 0), 0);
    }

    #[test]
    fn length_bounds_reject_impossible_partners() {
        // A pair violating the length filter can never reach the threshold.
        for m in [SetMeasure::Jaccard, SetMeasure::Cosine, SetMeasure::Dice] {
            let t = 0.6;
            let la = 10;
            let (lo, hi) = length_bounds(m, t, la);
            let x: Vec<u32> = (0..la as u32).collect();
            if lo > 0 {
                let y: Vec<u32> = (0..(lo - 1) as u32).collect();
                assert!(
                    m.score(&x, &y) < t,
                    "{m:?} too-short partner beat threshold"
                );
            }
            if hi < 100 {
                let y: Vec<u32> = (0..(hi + 1) as u32).collect();
                assert!(m.score(&x, &y) < t, "{m:?} too-long partner beat threshold");
            }
        }
    }
}

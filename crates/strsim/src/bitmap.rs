//! Bitset fast path for high-frequency token intersection.
//!
//! [`crate::dict::TokenDict`] assigns ranks ascending by document
//! frequency, so the most frequent tokens occupy the **top** of the rank
//! space — and, because records are sorted, they form a contiguous
//! *suffix* of every record. A [`BitmapIndex`] materializes that suffix
//! as a fixed-width bitset per record; the intersection of two suffixes
//! then costs a handful of `AND` + popcount words
//! ([`word_intersection_count`]) instead of a merge crawling through
//! exactly the tokens most likely to collide. The rare low-rank prefix
//! still runs the scalar merge+gallop kernel — with the residual bound,
//! so the merge-abort pruning of [`overlap_with_bound`] is preserved.
//!
//! Bitsets are sets, not multisets: any record whose suffix holds a
//! duplicate rank is flagged at build time and its pairs take the scalar
//! kernel wholesale, keeping [`overlap_with_bound_bitmap`] *exactly*
//! equivalent to [`overlap_with_bound`] (same `Some`/`None` outcome,
//! same overlap integer — and therefore bit-identical scores).

use crate::arena::RecordArena;
use crate::measures::{overlap_with_bound, word_intersection_count};
use mc_table::TupleId;

/// Default width (in token ranks) of the frequent suffix each bitset
/// covers: 512 ranks = 8 words per record.
pub const DEFAULT_FREQ_BITS: u32 = 512;

/// Per-record bitsets over the top `freq_bits` ranks of a shared rank
/// space, plus the bookkeeping needed to fall back exactly.
pub struct BitmapIndex {
    /// Ranks `>= cut` are represented in the bitsets.
    cut: u32,
    /// Words per record (`span.div_ceil(64)`).
    words_per_record: usize,
    /// Concatenated per-record bitsets (`len * words_per_record`).
    words: Vec<u64>,
    /// Index within each record where the frequent suffix starts.
    suffix_start: Vec<u32>,
    /// Whether the record's suffix is duplicate-free (bitset usable).
    clean: Vec<bool>,
}

impl BitmapIndex {
    /// Builds the index over `arena` for the shared rank space
    /// `[0, rank_bound)`, covering its top `freq_bits` ranks.
    ///
    /// Two indexes are only compatible when built with the same
    /// `rank_bound` and `freq_bits` — pass the max of both sides' arena
    /// bounds (exactly what the join engine sizes its postings with) so
    /// the cut agrees.
    pub fn build(arena: &RecordArena, rank_bound: u32, freq_bits: u32) -> BitmapIndex {
        let _span = mc_obs::span!("mc.strsim.bitmap.build");
        debug_assert!(rank_bound >= arena.rank_bound());
        let cut = rank_bound.saturating_sub(freq_bits);
        let span = (rank_bound - cut) as usize;
        let wpr = span.div_ceil(64);
        let n = arena.len();
        let mut idx = BitmapIndex {
            cut,
            words_per_record: wpr,
            words: vec![0u64; n * wpr],
            suffix_start: Vec::with_capacity(n),
            clean: Vec::with_capacity(n),
        };
        for (i, rec) in arena.iter().enumerate() {
            let s = rec.partition_point(|&t| t < cut);
            idx.suffix_start.push(s as u32);
            let suffix = &rec[s..];
            let clean = suffix.windows(2).all(|w| w[0] < w[1]);
            idx.clean.push(clean);
            if clean {
                let words = &mut idx.words[i * wpr..(i + 1) * wpr];
                for &t in suffix {
                    let bit = (t - cut) as usize;
                    words[bit / 64] |= 1u64 << (bit % 64);
                }
            }
        }
        mc_obs::counter!("mc.strsim.bitmap.builds").inc();
        idx
    }

    /// The rank below which tokens stay on the scalar prefix path.
    #[inline]
    pub fn cut(&self) -> u32 {
        self.cut
    }

    /// Number of records indexed.
    #[inline]
    pub fn len(&self) -> usize {
        self.suffix_start.len()
    }

    /// True if the index covers no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.suffix_start.is_empty()
    }

    #[inline]
    fn words(&self, i: TupleId) -> &[u64] {
        let w = self.words_per_record;
        &self.words[i as usize * w..(i as usize + 1) * w]
    }
}

/// Drop-in equivalent of [`overlap_with_bound`] for arena records `ia`
/// (indexed by `a`) and `ib` (indexed by `b`): returns `Some(o)` — the
/// exact multiset overlap of `ra` and `rb` — **iff** `o >= o_min`, and
/// `None` otherwise.
///
/// The frequent-suffix overlap comes from the bitset AND; the rare
/// prefix runs the scalar merge with the residual bound
/// `o_min − suffix_overlap`, so an unreachable bound still aborts the
/// merge early. Pairs touching a duplicate-carrying suffix take the
/// scalar kernel wholesale.
pub fn overlap_with_bound_bitmap(
    a: &BitmapIndex,
    b: &BitmapIndex,
    ra: &[u32],
    rb: &[u32],
    ia: TupleId,
    ib: TupleId,
    o_min: usize,
) -> Option<usize> {
    if ra.len().min(rb.len()) < o_min {
        return None;
    }
    if !a.clean[ia as usize] || !b.clean[ib as usize] {
        return overlap_with_bound(ra, rb, o_min);
    }
    debug_assert_eq!(a.cut, b.cut, "indexes must share one rank space");
    let o_s = word_intersection_count(a.words(ia), b.words(ib));
    let sa = a.suffix_start[ia as usize] as usize;
    let sb = b.suffix_start[ib as usize] as usize;
    let o_p = overlap_with_bound(&ra[..sa], &rb[..sb], o_min.saturating_sub(o_s))?;
    let o = o_s + o_p;
    (o >= o_min).then_some(o)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::multiset_overlap;

    fn arena(data: &[&[u32]]) -> RecordArena {
        RecordArena::from_records(data)
    }

    #[test]
    fn bitmap_overlap_matches_scalar_contract() {
        // Mixed records: some entirely below the cut, some straddling it,
        // one with duplicate high ranks (dirty suffix).
        let recs_a: [&[u32]; 4] = [&[1, 2, 30, 31], &[0, 1, 2], &[29, 30, 31], &[30, 30, 31]];
        let recs_b: [&[u32]; 3] = [&[2, 30, 31], &[0, 5], &[28, 29, 30, 31]];
        let (a, b) = (arena(&recs_a), arena(&recs_b));
        let bound = a.rank_bound().max(b.rank_bound());
        for bits in [0u32, 1, 4, 64, 65, 512] {
            let ba = BitmapIndex::build(&a, bound, bits);
            let bb = BitmapIndex::build(&b, bound, bits);
            assert_eq!(ba.cut(), bb.cut());
            for (i, ra) in recs_a.iter().enumerate() {
                for (j, rb) in recs_b.iter().enumerate() {
                    let o = multiset_overlap(ra, rb);
                    for o_min in 0..=(ra.len().min(rb.len()) + 2) {
                        let got = overlap_with_bound_bitmap(
                            &ba,
                            &bb,
                            ra,
                            rb,
                            i as TupleId,
                            j as TupleId,
                            o_min,
                        );
                        assert_eq!(
                            got,
                            (o >= o_min).then_some(o),
                            "bits={bits} pair=({i},{j}) o_min={o_min}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_arena_and_zero_bound() {
        let a = arena(&[]);
        let idx = BitmapIndex::build(&a, 0, 512);
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
        assert_eq!(idx.cut(), 0);
    }
}

//! Word and q-gram tokenizers.
//!
//! MatchCatcher tokenizes attribute values into **word-level tokens** for
//! its top-k joins (§4.2), and SIM blockers additionally use **character
//! q-grams** (e.g. `title_jac_3gram < 0.7` in Table 2). Both tokenizers
//! lowercase their input; the word tokenizer splits on any
//! non-alphanumeric character.

/// How a string is decomposed into tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tokenizer {
    /// Lowercased maximal alphanumeric runs ("Dave Smith-Jones" →
    /// `["dave", "smith", "jones"]`).
    Word,
    /// Lowercased character q-grams with `q−1` boundary pad characters
    /// (`#` prefix, `$` suffix), so "ab" with q = 3 yields
    /// `["##a", "#ab", "ab$", "b$$"]`.
    QGram(u8),
}

impl Tokenizer {
    /// Tokenizes `s` according to this tokenizer.
    pub fn tokens(&self, s: &str) -> Vec<String> {
        match self {
            Tokenizer::Word => word_tokens(s),
            Tokenizer::QGram(q) => qgram_tokens(s, *q as usize),
        }
    }

    /// A short label used in blocker descriptions ("word", "3gram").
    pub fn label(&self) -> String {
        match self {
            Tokenizer::Word => "word".to_string(),
            Tokenizer::QGram(q) => format!("{q}gram"),
        }
    }
}

/// Splits `s` into lowercased alphanumeric word tokens.
///
/// Punctuation and whitespace both delimit: `"B. Lee, Austin"` →
/// `["b", "lee", "austin"]`. The output preserves multiplicity (a multiset)
/// and the original order of appearance.
pub fn word_tokens(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in s.chars() {
        if c.is_alphanumeric() {
            for lc in c.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Lowercased, padded character q-grams of `s`.
///
/// The string is lowercased, runs of whitespace are collapsed to a single
/// space, then padded with `q−1` `#` characters in front and `$` characters
/// behind. Returns an empty vector for an effectively empty string or
/// `q == 0`.
pub fn qgram_tokens(s: &str, q: usize) -> Vec<String> {
    if q == 0 {
        return Vec::new();
    }
    let mut chars: Vec<char> = Vec::with_capacity(s.len() + 2 * (q - 1));
    chars.extend(std::iter::repeat_n('#', q - 1));
    let mut last_space = true;
    for c in s.chars() {
        if c.is_whitespace() {
            if !last_space {
                chars.push(' ');
                last_space = true;
            }
        } else {
            for lc in c.to_lowercase() {
                chars.push(lc);
            }
            last_space = false;
        }
    }
    while chars.last() == Some(&' ') {
        chars.pop();
    }
    if chars.len() == q - 1 {
        return Vec::new(); // nothing but padding
    }
    chars.extend(std::iter::repeat_n('$', q - 1));
    chars.windows(q).map(|w| w.iter().collect()).collect()
}

/// The last word token of a string, if any — the `lastword(·)` helper used
/// by the paper's running example (`lastword(a.Name) = lastword(b.Name)`).
pub fn last_word(s: &str) -> Option<String> {
    word_tokens(s).pop()
}

/// The first word token of a string, if any.
pub fn first_word(s: &str) -> Option<String> {
    word_tokens(s).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_split_on_punctuation_and_space() {
        assert_eq!(
            word_tokens("Dave  Smith-Jones, Jr."),
            vec!["dave", "smith", "jones", "jr"]
        );
    }

    #[test]
    fn words_preserve_multiplicity() {
        assert_eq!(word_tokens("la la land"), vec!["la", "la", "land"]);
    }

    #[test]
    fn words_of_empty_string() {
        assert!(word_tokens("").is_empty());
        assert!(word_tokens(" .,- ").is_empty());
    }

    #[test]
    fn qgrams_padded() {
        assert_eq!(qgram_tokens("ab", 3), vec!["##a", "#ab", "ab$", "b$$"]);
    }

    #[test]
    fn qgrams_lowercase_and_collapse_whitespace() {
        assert_eq!(qgram_tokens("A  B", 2), qgram_tokens("a b", 2));
    }

    #[test]
    fn qgrams_empty_input() {
        assert!(qgram_tokens("", 3).is_empty());
        assert!(qgram_tokens("   ", 3).is_empty());
        assert!(qgram_tokens("ab", 0).is_empty());
    }

    #[test]
    fn qgram_count_formula() {
        // |s| + q - 1 grams for a string with no internal whitespace.
        assert_eq!(qgram_tokens("abcd", 3).len(), 4 + 3 - 1);
    }

    #[test]
    fn last_and_first_word() {
        assert_eq!(last_word("Joe Welson"), Some("welson".into()));
        assert_eq!(first_word("Joe Welson"), Some("joe".into()));
        assert_eq!(last_word("  "), None);
    }

    #[test]
    fn tokenizer_dispatch_and_labels() {
        assert_eq!(Tokenizer::Word.tokens("A b"), vec!["a", "b"]);
        assert_eq!(Tokenizer::QGram(3).tokens("ab").len(), 4);
        assert_eq!(Tokenizer::Word.label(), "word");
        assert_eq!(Tokenizer::QGram(3).label(), "3gram");
    }

    #[test]
    fn unicode_words_lowercase() {
        assert_eq!(word_tokens("Ärzte ÖL"), vec!["ärzte", "öl"]);
    }
}

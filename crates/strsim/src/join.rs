//! Prefix-filtering threshold similarity joins.
//!
//! These joins power the **SIM blockers** of §2 (e.g.
//! `jaccard(a.title, b.title) ≥ 0.4`): build a prefix inverted index over
//! one table, probe with the other, verify survivors exactly. They are
//! intentionally separate from the debugger's *top-k* join (`mc-core`),
//! which has no threshold and extends prefixes incrementally.

use crate::measures::{multiset_overlap, overlap_with_bound, SetMeasure};
use crate::prefix::{length_bounds, min_overlap, overlap_prefix_len, prefix_len};
use mc_table::hash::{fx_set, FxHashMap};
use mc_table::{PairSet, TupleId};

/// An inverted index from token rank to the records whose *prefix*
/// contains that token.
struct PrefixIndex {
    postings: FxHashMap<u32, Vec<TupleId>>,
}

impl PrefixIndex {
    /// Indexes `records`, keeping `prefix_of(record_len)` tokens of each.
    fn build(records: &[Vec<u32>], prefix_of: impl Fn(usize) -> usize) -> Self {
        let mut postings: FxHashMap<u32, Vec<TupleId>> = FxHashMap::default();
        for (id, rec) in records.iter().enumerate() {
            let p = prefix_of(rec.len()).min(rec.len());
            let mut last = None;
            for &tok in &rec[..p] {
                // A duplicated token in one prefix needs a single posting.
                if last == Some(tok) {
                    continue;
                }
                last = Some(tok);
                postings.entry(tok).or_default().push(id as TupleId);
            }
        }
        PrefixIndex { postings }
    }

    #[inline]
    fn lookup(&self, tok: u32) -> &[TupleId] {
        self.postings.get(&tok).map_or(&[], |v| v.as_slice())
    }
}

/// Joins two tokenized record collections on `measure(x, y) ≥ threshold`.
///
/// Returns the set of `(a_index, b_index)` pairs meeting the threshold.
/// Empty records never join (similarity to anything is 0).
pub fn sim_join(a: &[Vec<u32>], b: &[Vec<u32>], measure: SetMeasure, threshold: f64) -> PairSet {
    let _span = mc_obs::span!("mc.strsim.join.sim");
    let index = PrefixIndex::build(b, |len| prefix_len(measure, threshold, len));
    let mut out = PairSet::new();
    let mut seen = fx_set();
    // Local accumulators, flushed to the registry once per join so the
    // probe loop pays no atomics.
    let (mut candidates, mut length_pruned, mut verify_pruned) = (0u64, 0u64, 0u64);
    for (ai, ra) in a.iter().enumerate() {
        if ra.is_empty() {
            continue;
        }
        let (lo, hi) = length_bounds(measure, threshold, ra.len());
        let pa = prefix_len(measure, threshold, ra.len()).min(ra.len());
        seen.clear();
        let mut last = None;
        for &tok in &ra[..pa] {
            if last == Some(tok) {
                continue;
            }
            last = Some(tok);
            for &bi in index.lookup(tok) {
                if !seen.insert(bi) {
                    continue;
                }
                candidates += 1;
                let rb = &b[bi as usize];
                if rb.len() < lo || rb.len() > hi {
                    length_pruned += 1;
                    continue;
                }
                let need = min_overlap(measure, threshold, ra.len(), rb.len());
                // Bounded merge: aborts as soon as the remaining tokens
                // cannot reach `need`, instead of finishing the merge and
                // checking afterwards.
                match overlap_with_bound(ra, rb, need) {
                    Some(o) if measure.from_overlap(o, ra.len(), rb.len()) >= threshold - 1e-12 => {
                        out.insert(ai as TupleId, bi);
                    }
                    _ => verify_pruned += 1,
                }
            }
        }
    }
    mc_obs::counter!("mc.strsim.join.candidates").add(candidates);
    mc_obs::counter!("mc.strsim.join.length_pruned").add(length_pruned);
    mc_obs::counter!("mc.strsim.join.verify_pruned").add(verify_pruned);
    mc_obs::counter!("mc.strsim.join.kept").add(out.len() as u64);
    out
}

/// Joins on **absolute overlap**: keeps pairs sharing at least
/// `min_common` tokens (the OL blockers of Table 2, e.g.
/// `title_overlap_word ≥ 3`).
pub fn overlap_join(a: &[Vec<u32>], b: &[Vec<u32>], min_common: usize) -> PairSet {
    let _span = mc_obs::span!("mc.strsim.join.overlap");
    let c = min_common.max(1);
    let index = PrefixIndex::build(b, |len| overlap_prefix_len(c, len));
    let mut out = PairSet::new();
    let mut seen = fx_set();
    let (mut candidates, mut verify_pruned) = (0u64, 0u64);
    for (ai, ra) in a.iter().enumerate() {
        if ra.len() < c {
            continue;
        }
        let pa = overlap_prefix_len(c, ra.len()).min(ra.len());
        seen.clear();
        let mut last = None;
        for &tok in &ra[..pa] {
            if last == Some(tok) {
                continue;
            }
            last = Some(tok);
            for &bi in index.lookup(tok) {
                if !seen.insert(bi) {
                    continue;
                }
                candidates += 1;
                let rb = &b[bi as usize];
                if rb.len() >= c && multiset_overlap(ra, rb) >= c {
                    out.insert(ai as TupleId, bi);
                } else {
                    verify_pruned += 1;
                }
            }
        }
    }
    mc_obs::counter!("mc.strsim.join.candidates").add(candidates);
    mc_obs::counter!("mc.strsim.join.verify_pruned").add(verify_pruned);
    mc_obs::counter!("mc.strsim.join.kept").add(out.len() as u64);
    out
}

/// Brute-force reference join used by tests and correctness experiments.
pub fn nested_loop_join(
    a: &[Vec<u32>],
    b: &[Vec<u32>],
    measure: SetMeasure,
    threshold: f64,
) -> PairSet {
    let mut out = PairSet::new();
    for (ai, ra) in a.iter().enumerate() {
        for (bi, rb) in b.iter().enumerate() {
            if !ra.is_empty() && !rb.is_empty() && measure.score(ra, rb) >= threshold - 1e-12 {
                out.insert(ai as TupleId, bi as TupleId);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
        let a = vec![
            vec![1, 2, 3, 4],
            vec![5, 6, 7],
            vec![1, 2],
            vec![],
            vec![8, 9, 10, 11, 12],
        ];
        let b = vec![
            vec![1, 2, 3, 5],
            vec![5, 6, 7],
            vec![2, 3, 4, 4],
            vec![9, 10, 11],
            vec![1],
        ];
        (a, b)
    }

    #[test]
    fn sim_join_matches_nested_loop() {
        let (a, b) = sample_records();
        for m in SetMeasure::ALL {
            for t in [0.3, 0.5, 0.75, 0.95] {
                let fast = sim_join(&a, &b, m, t).to_sorted_vec();
                let slow = nested_loop_join(&a, &b, m, t).to_sorted_vec();
                assert_eq!(fast, slow, "measure {m:?} threshold {t}");
            }
        }
    }

    #[test]
    fn overlap_join_matches_brute_force() {
        let (a, b) = sample_records();
        for c in 1..4 {
            let fast = overlap_join(&a, &b, c).to_sorted_vec();
            let mut slow = Vec::new();
            for (ai, ra) in a.iter().enumerate() {
                for (bi, rb) in b.iter().enumerate() {
                    if multiset_overlap(ra, rb) >= c {
                        slow.push((ai as TupleId, bi as TupleId));
                    }
                }
            }
            slow.sort_unstable();
            assert_eq!(fast, slow, "min_common {c}");
        }
    }

    #[test]
    fn empty_records_never_join() {
        let a = vec![vec![], vec![1u32]];
        let b = vec![vec![], vec![1u32]];
        let out = sim_join(&a, &b, SetMeasure::Jaccard, 0.1);
        assert_eq!(out.to_sorted_vec(), vec![(1, 1)]);
    }

    #[test]
    fn exact_threshold_pairs_are_kept() {
        // jaccard = exactly 0.5
        let a = vec![vec![1u32, 2, 3]];
        let b = vec![vec![1u32, 2, 4]];
        let out = sim_join(&a, &b, SetMeasure::Jaccard, 0.5);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn duplicate_prefix_tokens_do_not_duplicate_pairs() {
        let a = vec![vec![1u32, 1, 1, 2]];
        let b = vec![vec![1u32, 1, 3]];
        let out = sim_join(&a, &b, SetMeasure::Jaccard, 0.3);
        assert_eq!(out.len(), 1); // jac = 2/(4+3-2) = 0.4
    }

    #[test]
    fn high_threshold_filters_everything() {
        let (a, b) = sample_records();
        let out = sim_join(&a, &b, SetMeasure::Jaccard, 0.99);
        // only identical records: a[1] = b[1] = [5,6,7]
        assert_eq!(out.to_sorted_vec(), vec![(1, 1)]);
    }
}

//! Flat CSR-style record storage for the join hot paths.
//!
//! The top-k SSJ engine touches every record's token slice millions of
//! times per join. Storing records as `Vec<Vec<u32>>` scatters them
//! across the heap (one allocation per record) and makes per-config
//! materialization in the joint executor allocate `|A| + |B|` vectors
//! per config. A [`RecordArena`] instead keeps **one contiguous token
//! buffer plus per-record bounds** — records come out as `&[u32]`
//! slices, the whole table is a handful of allocations, and sequential
//! scans are prefetch-friendly.
//!
//! The arena also tracks the exclusive upper bound of the token ranks it
//! holds ([`RecordArena::rank_bound`]); ranks are dense dictionary
//! indexes, so the bound lets the join engine use `Vec`-indexed postings
//! arrays instead of hash maps.
//!
//! Internally every record is addressed through two raw pointers,
//! `starts` and `ends`: record `i` is `tokens[starts[i] .. ends[i]]`.
//! Three backings provide those pointers:
//!
//! * **Owned** — a compact CSR pair (`tokens` + `offsets`); `starts`
//!   aliases `offsets[0..]` and `ends` aliases `offsets[1..]`, so the
//!   classic layout costs nothing extra.
//! * **Mapped** — the same CSR layout borrowed from a [`StableBytes`]
//!   backing (a memory-mapped artifact file): warm starts point the
//!   join straight at the file's pages with zero decode and zero copy
//!   ([`RecordArena::from_stable_parts`]).
//! * **Split** — independent `starts`/`ends` arrays over a shared
//!   (`Arc`) token buffer. This is the **patchable** form used by
//!   incremental debugging sessions: [`RecordArena::patch_record`]
//!   tombstones the old span and appends the new tokens,
//!   [`RecordArena::tombstone`] empties a record in O(1), and
//!   [`RecordArena::masked_view`] derives a view sharing the token
//!   buffer in which inactive records are empty — empty records never
//!   enter the join's event heap, so a view restricts a join to a
//!   record subset without the join engine knowing. Garbage from
//!   patches accumulates until [`RecordArena::compact`] rebuilds the
//!   compact CSR form (see [`RecordArena::garbage_ratio`]).
//!
//! Either way the hot accessors cost the same — two pointers and a
//! length, resolved once at construction.

use crate::dict::TokenizedTable;
use mc_table::TupleId;
use std::sync::Arc;

/// A byte buffer whose address is stable for the value's whole lifetime.
///
/// Implemented by zero-copy artifact backings (memory-mapped files,
/// pinned heap buffers) so a [`RecordArena`] can cache raw pointers into
/// the bytes at construction and skip per-access indirection.
///
/// # Safety
///
/// Implementors must guarantee that `bytes()` returns the same pointer
/// and length on every call for the lifetime of `self` (the buffer never
/// moves, grows, or shrinks), and that the bytes are never mutated while
/// `self` is alive.
pub unsafe trait StableBytes: Send + Sync {
    /// The backing bytes.
    fn bytes(&self) -> &[u8];
}

/// What keeps a [`RecordArena`]'s buffers alive.
enum Backing {
    /// The arena owns a compact CSR pair (the pointers point into these
    /// Vecs; a Vec's heap buffer does not move when the Vec itself
    /// moves).
    Owned { tokens: Vec<u32>, offsets: Vec<u32> },
    /// The buffers live inside a stable byte backing (e.g. an mmapped
    /// store artifact); the Arc keeps it alive.
    Mapped(Arc<dyn StableBytes>),
    /// Patchable form: independent per-record bounds over a shared
    /// token buffer. Tombstoned/patched spans leave garbage in the
    /// buffer; `masked_view` clones the Arc instead of the tokens.
    Split {
        tokens: Arc<Vec<u32>>,
        starts: Vec<u32>,
        ends: Vec<u32>,
    },
}

/// Records stored back-to-back in one token buffer.
///
/// Record `i` is `tokens[starts[i] .. ends[i]]`, a sorted rank multiset
/// exactly as [`TokenizedTable::merged`] would produce it.
pub struct RecordArena {
    tokens: *const u32,
    /// Physical buffer length, *including* garbage left by patches.
    n_tokens: usize,
    starts: *const u32,
    ends: *const u32,
    n_records: usize,
    /// Tokens reachable through live records (excludes patch garbage).
    live_tokens: usize,
    rank_bound: u32,
    backing: Backing,
}

// SAFETY: the buffers behind the raw pointers are immutable while shared
// and owned/kept alive by `backing` (Vecs, or an Arc to a Send + Sync
// StableBytes); every `&mut self` mutation re-derives the pointers
// before returning. Sharing or moving the arena across threads is sound.
unsafe impl Send for RecordArena {}
unsafe impl Sync for RecordArena {}

/// Accumulates owned CSR buffers, then seals them into a [`RecordArena`].
struct ArenaBuilder {
    tokens: Vec<u32>,
    offsets: Vec<u32>,
    rank_bound: u32,
}

impl ArenaBuilder {
    fn with_capacity(total_tokens: usize, rows: usize) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        ArenaBuilder {
            tokens: Vec::with_capacity(total_tokens),
            offsets,
            rank_bound: 0,
        }
    }

    /// Seals the tokens appended since the last record boundary as one
    /// record, updating the rank bound.
    fn close_record(&mut self) {
        let start = *self.offsets.last().expect("offsets never empty") as usize;
        // Records are sorted, so the last token is the largest.
        if let Some(&max) = self.tokens.last() {
            if self.tokens.len() > start {
                self.rank_bound = self.rank_bound.max(max + 1);
            }
        }
        self.offsets.push(self.tokens.len() as u32);
    }

    fn finish(self) -> RecordArena {
        RecordArena::from_owned(self.tokens, self.offsets, self.rank_bound)
    }
}

impl RecordArena {
    /// An empty arena.
    pub fn new() -> Self {
        RecordArena::from_owned(Vec::new(), vec![0], 0)
    }

    /// Seals owned buffers into an arena, caching the data pointers.
    /// Invariants (offsets shape, sortedness) are the caller's problem —
    /// this is the private trusted constructor.
    fn from_owned(tokens: Vec<u32>, offsets: Vec<u32>, rank_bound: u32) -> RecordArena {
        debug_assert!(!offsets.is_empty());
        let mut arena = RecordArena {
            tokens: std::ptr::null(),
            n_tokens: 0,
            starts: std::ptr::null(),
            ends: std::ptr::null(),
            n_records: 0,
            live_tokens: tokens.len(),
            rank_bound,
            backing: Backing::Owned { tokens, offsets },
        };
        arena.refresh_ptrs();
        arena
    }

    /// Re-derives the cached data pointers from the backing. Must be
    /// called after every mutation that may move a backing buffer.
    fn refresh_ptrs(&mut self) {
        match &self.backing {
            Backing::Owned { tokens, offsets } => {
                self.tokens = tokens.as_ptr();
                self.n_tokens = tokens.len();
                self.starts = offsets.as_ptr();
                // SAFETY: `offsets` is non-empty, so one element in is in
                // bounds or one-past-the-end; with `n_records =
                // offsets.len() - 1` reads stay inside the Vec.
                self.ends = unsafe { offsets.as_ptr().add(1) };
                self.n_records = offsets.len() - 1;
            }
            // Mapped pointers target the stable mapping, not the Arc
            // itself; they never move.
            Backing::Mapped(_) => {}
            Backing::Split {
                tokens,
                starts,
                ends,
            } => {
                self.tokens = tokens.as_ptr();
                self.n_tokens = tokens.len();
                self.starts = starts.as_ptr();
                self.ends = ends.as_ptr();
                self.n_records = starts.len();
            }
        }
    }

    /// Builds the arena for one config directly from a tokenized table:
    /// record `t` is the sorted merge of `attr_indexes`' rank vectors of
    /// tuple `t` (identical to [`TokenizedTable::merged`], without the
    /// per-record allocation).
    pub fn from_tokenized(tok: &TokenizedTable, attr_indexes: &[usize]) -> Self {
        let _span = mc_obs::span!("mc.strsim.arena.build");
        let rows = tok.rows();
        let total: usize = (0..rows as TupleId)
            .map(|t| tok.merged_len(attr_indexes, t))
            .sum();
        let mut b = ArenaBuilder::with_capacity(total, rows);
        for t in 0..rows as TupleId {
            let start = b.tokens.len();
            for &i in attr_indexes {
                b.tokens.extend_from_slice(tok.ranks(i, t));
            }
            b.tokens[start..].sort_unstable();
            b.close_record();
        }
        mc_obs::counter!("mc.strsim.arena.builds").inc();
        mc_obs::counter!("mc.strsim.arena.tokens").add(b.tokens.len() as u64);
        b.finish()
    }

    /// Builds an arena from materialized records (tests, ad-hoc callers).
    /// Each record must already be sorted ascending.
    pub fn from_records<R: AsRef<[u32]>>(records: &[R]) -> Self {
        let total: usize = records.iter().map(|r| r.as_ref().len()).sum();
        let mut b = ArenaBuilder::with_capacity(total, records.len());
        for r in records {
            let r = r.as_ref();
            debug_assert!(r.windows(2).all(|w| w[0] <= w[1]), "records must be sorted");
            b.tokens.extend_from_slice(r);
            b.close_record();
        }
        b.finish()
    }

    /// Number of records.
    #[inline]
    pub fn len(&self) -> usize {
        self.n_records
    }

    /// True if the arena holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record `i` as a sorted rank slice.
    #[inline]
    pub fn record(&self, i: TupleId) -> &[u32] {
        let i = i as usize;
        assert!(i < self.n_records, "record {i} out of bounds");
        // SAFETY: `i < n_records` puts both bound reads in range; the
        // backing guarantees `starts[i] <= ends[i] <= n_tokens` (CSR
        // validation or the patch methods' bookkeeping), so the slice is
        // inside the live token buffer.
        unsafe {
            let lo = *self.starts.add(i) as usize;
            let hi = *self.ends.add(i) as usize;
            debug_assert!(lo <= hi && hi <= self.n_tokens);
            std::slice::from_raw_parts(self.tokens.add(lo), hi - lo)
        }
    }

    /// Iterates over all records in order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.n_records).map(move |i| self.record(i as TupleId))
    }

    /// Exclusive upper bound on the token ranks held (`max rank + 1`;
    /// 0 when every record is empty). Sizes dense postings arrays. For
    /// patched arenas this is an upper bound — patches only ever grow
    /// it; [`RecordArena::compact`] re-tightens it.
    #[inline]
    pub fn rank_bound(&self) -> u32 {
        self.rank_bound
    }

    /// Total token count across all live records (multiset cardinality;
    /// excludes garbage left behind by patches).
    #[inline]
    pub fn total_tokens(&self) -> usize {
        self.live_tokens
    }

    /// True when the buffers are borrowed from a [`StableBytes`] backing
    /// rather than owned (diagnostics; behaviour is identical).
    pub fn is_mapped(&self) -> bool {
        matches!(self.backing, Backing::Mapped(_))
    }

    /// True when the arena is in compact CSR form (records laid out
    /// back-to-back, no patch garbage) — the only form the store codecs
    /// accept. Patched or masked arenas answer `false` until
    /// [`RecordArena::compact`].
    pub fn is_compact(&self) -> bool {
        !matches!(self.backing, Backing::Split { .. })
    }

    /// The flat token buffer (for serialization; see `mc-store`).
    ///
    /// # Panics
    ///
    /// If the arena is not compact ([`RecordArena::is_compact`]): a
    /// patched buffer contains garbage spans that must not be persisted.
    #[inline]
    pub fn tokens(&self) -> &[u32] {
        assert!(
            self.is_compact(),
            "tokens() requires a compact arena; call compact() first"
        );
        // SAFETY: pointer + length were derived from the live backing at
        // construction; the backing is immutable while shared.
        unsafe { std::slice::from_raw_parts(self.tokens, self.n_tokens) }
    }

    /// The record offsets array, length `len() + 1` (for serialization).
    ///
    /// # Panics
    ///
    /// If the arena is not compact — a Split backing has no single
    /// offsets array.
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        assert!(
            self.is_compact(),
            "offsets() requires a compact arena; call compact() first"
        );
        // SAFETY: for compact backings `starts` points at the offsets
        // array of length `n_records + 1`.
        unsafe { std::slice::from_raw_parts(self.starts, self.n_records + 1) }
    }

    /// Converts the arena to the patchable Split backing in place. A
    /// no-op when already patchable; mapped arenas copy their tokens out
    /// of the mapping once. Call before a batch of
    /// [`RecordArena::patch_record`]s to make [`RecordArena::masked_view`]
    /// share the buffer instead of copying it.
    pub fn make_patchable(&mut self) {
        if let Backing::Split { .. } = self.backing {
            return;
        }
        // For both compact backings `starts` currently points at the
        // offsets array (length n_records + 1).
        // SAFETY: see `offsets()`.
        let offsets = unsafe { std::slice::from_raw_parts(self.starts, self.n_records + 1) };
        let starts = offsets[..self.n_records].to_vec();
        let ends = offsets[1..].to_vec();
        let placeholder = Backing::Owned {
            tokens: Vec::new(),
            offsets: vec![0],
        };
        let tokens = match std::mem::replace(&mut self.backing, placeholder) {
            // Reuse the owned buffer without copying.
            Backing::Owned { tokens, .. } => Arc::new(tokens),
            mapped @ Backing::Mapped(_) => {
                // Copy out of the mapping while the Arc (bound as
                // `mapped`) still keeps the pages alive.
                // SAFETY: see `tokens()`.
                let buf =
                    unsafe { std::slice::from_raw_parts(self.tokens, self.n_tokens) }.to_vec();
                drop(mapped);
                Arc::new(buf)
            }
            Backing::Split { .. } => unreachable!("handled above"),
        };
        self.backing = Backing::Split {
            tokens,
            starts,
            ends,
        };
        self.refresh_ptrs();
    }

    /// Replaces record `i`'s tokens: the old span is tombstoned (left as
    /// garbage in the buffer) and the new tokens are appended. The new
    /// record must be sorted ascending. Converts to the patchable
    /// backing on first use.
    pub fn patch_record(&mut self, i: TupleId, new_tokens: &[u32]) {
        debug_assert!(
            new_tokens.windows(2).all(|w| w[0] <= w[1]),
            "records must be sorted"
        );
        self.make_patchable();
        let Backing::Split {
            tokens,
            starts,
            ends,
        } = &mut self.backing
        else {
            unreachable!("make_patchable guarantees Split");
        };
        let i = i as usize;
        assert!(i < starts.len(), "record {i} out of bounds");
        self.live_tokens -= (ends[i] - starts[i]) as usize;
        if new_tokens.is_empty() {
            ends[i] = starts[i];
        } else {
            let buf = Arc::make_mut(tokens);
            let lo = buf.len();
            assert!(
                lo + new_tokens.len() < u32::MAX as usize,
                "token buffer overflow"
            );
            buf.extend_from_slice(new_tokens);
            starts[i] = lo as u32;
            ends[i] = buf.len() as u32;
            self.live_tokens += new_tokens.len();
            self.rank_bound = self
                .rank_bound
                .max(new_tokens.last().expect("non-empty") + 1);
        }
        self.refresh_ptrs();
    }

    /// Empties record `i`, leaving its old tokens as garbage. The id
    /// stays allocated — empty records never enter a join.
    pub fn tombstone(&mut self, i: TupleId) {
        self.patch_record(i, &[]);
    }

    /// Appends a new record (sorted ascending), returning its id.
    pub fn push_record(&mut self, new_tokens: &[u32]) -> TupleId {
        debug_assert!(
            new_tokens.windows(2).all(|w| w[0] <= w[1]),
            "records must be sorted"
        );
        self.make_patchable();
        let Backing::Split {
            tokens,
            starts,
            ends,
        } = &mut self.backing
        else {
            unreachable!("make_patchable guarantees Split");
        };
        assert!(starts.len() < u32::MAX as usize, "arena full");
        let buf = Arc::make_mut(tokens);
        let lo = buf.len();
        assert!(
            lo + new_tokens.len() < u32::MAX as usize,
            "token buffer overflow"
        );
        buf.extend_from_slice(new_tokens);
        starts.push(lo as u32);
        ends.push(buf.len() as u32);
        self.live_tokens += new_tokens.len();
        if let Some(&max) = new_tokens.last() {
            self.rank_bound = self.rank_bound.max(max + 1);
        }
        let id = (starts.len() - 1) as TupleId;
        self.refresh_ptrs();
        id
    }

    /// Fraction of the physical token buffer occupied by garbage
    /// (tombstoned or superseded spans). 0 for compact arenas.
    pub fn garbage_ratio(&self) -> f64 {
        if self.n_tokens == 0 {
            0.0
        } else {
            (self.n_tokens - self.live_tokens) as f64 / self.n_tokens as f64
        }
    }

    /// Rebuilds the compact CSR form in place: records re-laid
    /// back-to-back, garbage dropped, rank bound re-tightened. A no-op
    /// when already compact.
    pub fn compact(&mut self) {
        if self.is_compact() {
            return;
        }
        let mut tokens = Vec::with_capacity(self.live_tokens);
        let mut offsets = Vec::with_capacity(self.n_records + 1);
        offsets.push(0u32);
        let mut bound = 0u32;
        for i in 0..self.n_records {
            let rec = self.record(i as TupleId);
            tokens.extend_from_slice(rec);
            if let Some(&max) = rec.last() {
                bound = bound.max(max + 1);
            }
            offsets.push(tokens.len() as u32);
        }
        self.live_tokens = tokens.len();
        self.rank_bound = bound;
        self.backing = Backing::Owned { tokens, offsets };
        self.refresh_ptrs();
    }

    /// A view of this arena in which records failing `active` are empty
    /// (and therefore invisible to the join engine — empty records post
    /// no events and are never discovered). Ids and live records'
    /// contents are unchanged. When the arena is already patchable the
    /// view shares the token buffer via `Arc`; compact arenas pay one
    /// buffer copy — call [`RecordArena::make_patchable`] first to avoid
    /// it.
    pub fn masked_view(&self, active: impl Fn(TupleId) -> bool) -> RecordArena {
        let mut starts = Vec::with_capacity(self.n_records);
        let mut ends = Vec::with_capacity(self.n_records);
        let mut live = 0usize;
        for i in 0..self.n_records {
            // SAFETY: i < n_records, as in `record()`.
            let (lo, hi) = unsafe { (*self.starts.add(i), *self.ends.add(i)) };
            starts.push(lo);
            if active(i as TupleId) {
                ends.push(hi);
                live += (hi - lo) as usize;
            } else {
                ends.push(lo);
            }
        }
        let tokens = match &self.backing {
            Backing::Split { tokens, .. } => Arc::clone(tokens),
            // SAFETY: see `tokens()` — compact backings expose the full
            // buffer.
            _ => {
                Arc::new(unsafe { std::slice::from_raw_parts(self.tokens, self.n_tokens) }.to_vec())
            }
        };
        let mut view = RecordArena {
            tokens: std::ptr::null(),
            n_tokens: 0,
            starts: std::ptr::null(),
            ends: std::ptr::null(),
            n_records: 0,
            live_tokens: live,
            rank_bound: self.rank_bound,
            backing: Backing::Split {
                tokens,
                starts,
                ends,
            },
        };
        view.refresh_ptrs();
        view
    }

    /// Rebuilds an arena from raw CSR parts, validating the offsets
    /// invariant (starts at 0, non-decreasing, ends at `tokens.len()`)
    /// and recomputing the rank bound. Returns `None` on any violation,
    /// so corrupt store artifacts degrade to cache misses.
    pub fn from_parts(tokens: Vec<u32>, offsets: Vec<u32>) -> Option<RecordArena> {
        let rank_bound = validate_csr(&tokens, &offsets)?;
        Some(RecordArena::from_owned(tokens, offsets, rank_bound))
    }

    /// Zero-copy sibling of [`RecordArena::from_parts`]: borrows the
    /// tokens and offsets arrays directly from `backing`'s bytes (given
    /// as byte ranges into [`StableBytes::bytes`]) instead of copying
    /// them out. Runs the full structural validation — plus alignment
    /// and little-endian checks, since the bytes are reinterpreted in
    /// place — and returns `None` on any violation, so corrupt or
    /// foreign-endian artifacts degrade to cache misses.
    pub fn from_stable_parts(
        backing: Arc<dyn StableBytes>,
        tokens_bytes: std::ops::Range<usize>,
        offsets_bytes: std::ops::Range<usize>,
    ) -> Option<RecordArena> {
        if cfg!(target_endian = "big") {
            return None; // in-place reinterpretation assumes LE files
        }
        let bytes = backing.bytes();
        let tokens = u32_view(bytes, tokens_bytes)?;
        let offsets = u32_view(bytes, offsets_bytes)?;
        let rank_bound = validate_csr(tokens, offsets)?;
        let arena = RecordArena {
            tokens: tokens.as_ptr(),
            n_tokens: tokens.len(),
            starts: offsets.as_ptr(),
            // SAFETY: `offsets` is non-empty (validate_csr checked its
            // first element), so one element in is in bounds or
            // one-past-the-end.
            ends: unsafe { offsets.as_ptr().add(1) },
            n_records: offsets.len() - 1,
            live_tokens: tokens.len(),
            rank_bound,
            backing: Backing::Mapped(backing),
        };
        Some(arena)
    }
}

/// Checks a byte range is in bounds, 4-aligned and a whole number of
/// `u32`s, and reinterprets it. Little-endian targets only (checked by
/// the caller).
fn u32_view(bytes: &[u8], range: std::ops::Range<usize>) -> Option<&[u32]> {
    let view = bytes.get(range)?;
    if !(view.as_ptr() as usize).is_multiple_of(std::mem::align_of::<u32>())
        || !view.len().is_multiple_of(4)
    {
        return None;
    }
    // SAFETY: in-bounds, aligned, correctly sized; u32 has no invalid
    // bit patterns; the backing is immutable for its lifetime.
    Some(unsafe { std::slice::from_raw_parts(view.as_ptr().cast(), view.len() / 4) })
}

/// Validates CSR invariants shared by owned and mapped arenas; returns
/// the recomputed rank bound.
fn validate_csr(tokens: &[u32], offsets: &[u32]) -> Option<u32> {
    if offsets.first() != Some(&0) {
        return None;
    }
    if *offsets.last().expect("checked non-empty") as usize != tokens.len() {
        return None;
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return None;
    }
    // Every record must be a sorted rank multiset — the join's run
    // counters and postings depend on it.
    if offsets.windows(2).any(|w| {
        tokens[w[0] as usize..w[1] as usize]
            .windows(2)
            .any(|t| t[0] > t[1])
    }) {
        return None;
    }
    Some(tokens.iter().max().map_or(0, |&m| m + 1))
}

impl Default for RecordArena {
    fn default() -> Self {
        RecordArena::new()
    }
}

impl Clone for RecordArena {
    fn clone(&self) -> Self {
        let mut clone = RecordArena {
            tokens: self.tokens,
            n_tokens: self.n_tokens,
            starts: self.starts,
            ends: self.ends,
            n_records: self.n_records,
            live_tokens: self.live_tokens,
            rank_bound: self.rank_bound,
            backing: match &self.backing {
                Backing::Owned { tokens, offsets } => Backing::Owned {
                    tokens: tokens.clone(),
                    offsets: offsets.clone(),
                },
                Backing::Mapped(arc) => Backing::Mapped(Arc::clone(arc)),
                Backing::Split {
                    tokens,
                    starts,
                    ends,
                } => Backing::Split {
                    tokens: Arc::clone(tokens),
                    starts: starts.clone(),
                    ends: ends.clone(),
                },
            },
        };
        // Point at the clone's buffers (no-op for Mapped, whose
        // pointers target the shared stable mapping).
        clone.refresh_ptrs();
        clone
    }
}

impl std::fmt::Debug for RecordArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordArena")
            .field("records", &self.len())
            .field("tokens", &self.total_tokens())
            .field("rank_bound", &self.rank_bound)
            .field("mapped", &self.is_mapped())
            .field("compact", &self.is_compact())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::Tokenizer;
    use mc_table::{AttrId, Schema, Table, Tuple};
    use std::sync::Arc;

    #[test]
    fn from_records_roundtrips_slices() {
        let records: Vec<Vec<u32>> = vec![vec![1, 2, 2, 9], vec![], vec![0, 4]];
        let arena = RecordArena::from_records(&records);
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.record(0), &[1, 2, 2, 9]);
        assert_eq!(arena.record(1), &[] as &[u32]);
        assert_eq!(arena.record(2), &[0, 4]);
        assert_eq!(arena.rank_bound(), 10);
        assert_eq!(arena.total_tokens(), 6);
        let collected: Vec<&[u32]> = arena.iter().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[2], &[0, 4]);
    }

    #[test]
    fn empty_arena_has_zero_bound() {
        let arena = RecordArena::from_records::<Vec<u32>>(&[]);
        assert_eq!(arena.len(), 0);
        assert!(arena.is_empty());
        assert_eq!(arena.rank_bound(), 0);
        let only_empty = RecordArena::from_records(&[Vec::<u32>::new()]);
        assert_eq!(only_empty.rank_bound(), 0);
        assert_eq!(only_empty.len(), 1);
    }

    #[test]
    fn from_tokenized_matches_merged_exactly() {
        let schema = Arc::new(Schema::from_names(["name", "city"]));
        let mut a = Table::new("A", Arc::clone(&schema));
        a.push(Tuple::from_present(["dave smith", "atlanta"]));
        a.push(Tuple::from_present(["joe welson", "new york city"]));
        a.push(Tuple::new(vec![None, None]));
        let mut b = Table::new("B", schema);
        b.push(Tuple::from_present(["david smith", "atlanta"]));
        let attrs = [AttrId(0), AttrId(1)];
        let (ta, _tb, _) = TokenizedTable::build_pair(&a, &b, &attrs, Tokenizer::Word);
        for idx in [vec![0usize], vec![1], vec![0, 1], vec![1, 0]] {
            let arena = RecordArena::from_tokenized(&ta, &idx);
            assert_eq!(arena.len(), ta.rows());
            for t in 0..ta.rows() as TupleId {
                assert_eq!(
                    arena.record(t),
                    ta.merged(&idx, t).as_slice(),
                    "attrs {idx:?} tuple {t}"
                );
            }
        }
    }

    #[test]
    fn patch_tombstone_push_and_compact() {
        let mut arena = RecordArena::from_records(&[vec![1u32, 5], vec![2, 3, 8], vec![4]]);
        assert!(arena.is_compact());
        arena.patch_record(1, &[0, 9, 20]);
        assert!(!arena.is_compact());
        assert_eq!(arena.record(0), &[1, 5]);
        assert_eq!(arena.record(1), &[0, 9, 20]);
        assert_eq!(arena.record(2), &[4]);
        assert_eq!(arena.rank_bound(), 21);
        assert_eq!(arena.total_tokens(), 6);
        assert!(arena.garbage_ratio() > 0.0, "old span became garbage");

        arena.tombstone(0);
        assert_eq!(arena.record(0), &[] as &[u32]);
        assert_eq!(arena.total_tokens(), 4);

        let id = arena.push_record(&[7, 7]);
        assert_eq!(id, 3);
        assert_eq!(arena.record(3), &[7, 7]);
        assert_eq!(arena.len(), 4);
        assert_eq!(arena.total_tokens(), 6);

        let garbage_before = arena.garbage_ratio();
        assert!(garbage_before > 0.0);
        arena.compact();
        assert!(arena.is_compact());
        assert_eq!(arena.garbage_ratio(), 0.0);
        assert_eq!(arena.record(0), &[] as &[u32]);
        assert_eq!(arena.record(1), &[0, 9, 20]);
        assert_eq!(arena.record(2), &[4]);
        assert_eq!(arena.record(3), &[7, 7]);
        assert_eq!(arena.rank_bound(), 21);
        // Compact form round-trips through the store codec accessors.
        assert_eq!(arena.offsets(), &[0, 0, 3, 4, 6]);
        assert_eq!(arena.tokens(), &[0, 9, 20, 4, 7, 7]);
    }

    #[test]
    fn compact_retightens_rank_bound() {
        let mut arena = RecordArena::from_records(&[vec![1u32], vec![99]]);
        assert_eq!(arena.rank_bound(), 100);
        arena.tombstone(1);
        assert_eq!(arena.rank_bound(), 100, "tombstone keeps the bound");
        arena.compact();
        assert_eq!(arena.rank_bound(), 2, "compaction recomputes it");
    }

    #[test]
    fn masked_view_hides_records_and_shares_buffer() {
        let mut arena = RecordArena::from_records(&[vec![1u32, 5], vec![2, 3], vec![4]]);
        arena.make_patchable();
        let view = arena.masked_view(|i| i == 1);
        assert_eq!(view.len(), 3, "ids are preserved");
        assert_eq!(view.record(0), &[] as &[u32]);
        assert_eq!(view.record(1), &[2, 3]);
        assert_eq!(view.record(2), &[] as &[u32]);
        assert_eq!(view.total_tokens(), 2);
        assert_eq!(view.rank_bound(), arena.rank_bound());
        // The view stays valid after the source is dropped (shared Arc).
        drop(arena);
        assert_eq!(view.record(1), &[2, 3]);
        // Views of compact arenas work too (one-time copy).
        let compact = RecordArena::from_records(&[vec![0u32], vec![6]]);
        let v2 = compact.masked_view(|i| i == 0);
        assert_eq!(v2.record(0), &[0]);
        assert_eq!(v2.record(1), &[] as &[u32]);
    }

    #[test]
    fn patched_clone_is_independent() {
        let mut arena = RecordArena::from_records(&[vec![1u32], vec![2]]);
        arena.patch_record(0, &[8]);
        let clone = arena.clone();
        arena.patch_record(1, &[9]);
        assert_eq!(clone.record(0), &[8]);
        assert_eq!(clone.record(1), &[2], "clone unaffected by later patch");
        assert_eq!(arena.record(1), &[9]);
    }

    #[test]
    #[should_panic(expected = "requires a compact arena")]
    fn offsets_on_patched_arena_panics() {
        let mut arena = RecordArena::from_records(&[vec![1u32]]);
        arena.tombstone(0);
        let _ = arena.offsets();
    }

    /// A stable backing over an 8-aligned heap buffer, as the store's
    /// heap fallback produces.
    struct PinnedWords(Vec<u64>, usize);

    unsafe impl StableBytes for PinnedWords {
        fn bytes(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.0.as_ptr().cast(), self.1) }
        }
    }

    fn pinned(bytes: &[u8]) -> Arc<dyn StableBytes> {
        let mut buf = vec![0u64; bytes.len().div_ceil(8)];
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), buf.as_mut_ptr().cast(), bytes.len())
        };
        Arc::new(PinnedWords(buf, bytes.len()))
    }

    fn le_bytes(vals: &[u32]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn from_stable_parts_borrows_and_matches_owned() {
        let records: Vec<Vec<u32>> = vec![vec![3, 5, 5, 90], vec![], vec![0, 7]];
        let owned = RecordArena::from_records(&records);
        // Lay out [offsets | tokens] in one buffer, offsets first so the
        // token range starts at a non-zero offset.
        let mut raw = le_bytes(owned.offsets());
        let tokens_at = raw.len();
        raw.extend(le_bytes(owned.tokens()));
        let backing = pinned(&raw);
        let mapped = RecordArena::from_stable_parts(
            Arc::clone(&backing),
            tokens_at..raw.len(),
            0..tokens_at,
        )
        .expect("valid layout maps");
        assert!(mapped.is_mapped());
        assert!(!owned.is_mapped());
        assert_eq!(mapped.len(), owned.len());
        assert_eq!(mapped.rank_bound(), owned.rank_bound());
        assert_eq!(mapped.total_tokens(), owned.total_tokens());
        for t in 0..owned.len() as TupleId {
            assert_eq!(mapped.record(t), owned.record(t));
        }
        // Clones share the backing and keep working after the original
        // and the local Arc are gone.
        let clone = mapped.clone();
        drop(mapped);
        drop(backing);
        assert_eq!(clone.record(0), &[3, 5, 5, 90]);
        let sent = std::thread::spawn(move || clone.record(2).to_vec())
            .join()
            .expect("cross-thread use");
        assert_eq!(sent, vec![0, 7]);
    }

    #[test]
    fn mapped_arena_becomes_patchable_by_copying() {
        let owned = RecordArena::from_records(&[vec![1u32, 2], vec![3]]);
        let mut raw = le_bytes(owned.offsets());
        let tokens_at = raw.len();
        raw.extend(le_bytes(owned.tokens()));
        let backing = pinned(&raw);
        let mut mapped =
            RecordArena::from_stable_parts(backing, tokens_at..raw.len(), 0..tokens_at)
                .expect("valid layout maps");
        mapped.patch_record(0, &[5, 6, 7]);
        assert!(!mapped.is_mapped(), "patching detaches from the mapping");
        assert_eq!(mapped.record(0), &[5, 6, 7]);
        assert_eq!(mapped.record(1), &[3]);
    }

    #[test]
    fn from_stable_parts_rejects_structural_and_alignment_violations() {
        let tokens = le_bytes(&[1, 2, 3]);
        let good_offsets = le_bytes(&[0, 2, 3]);
        let mut raw = good_offsets.clone();
        raw.extend(&tokens);
        let backing = pinned(&raw);
        let ok = |t: std::ops::Range<usize>, o: std::ops::Range<usize>| {
            RecordArena::from_stable_parts(Arc::clone(&backing), t, o).is_some()
        };
        assert!(ok(12..24, 0..12), "baseline is valid");
        assert!(!ok(12..24, 0..8), "offsets not ending at n_tokens");
        assert!(!ok(12..25, 0..12), "token range out of bounds");
        assert!(!ok(12..23, 0..12), "token bytes not a multiple of 4");
        assert!(!ok(13..21, 0..12), "misaligned token range");
        assert!(!ok(12..24, 0..0), "empty offsets");
        // Unsorted record: tokens [2, 1] with offsets [0, 2].
        let mut bad = le_bytes(&[0, 2]);
        bad.extend(le_bytes(&[2, 1]));
        let bad = pinned(&bad);
        assert!(RecordArena::from_stable_parts(bad, 8..16, 0..8).is_none());
    }
}

//! Flat CSR-style record storage for the join hot paths.
//!
//! The top-k SSJ engine touches every record's token slice millions of
//! times per join. Storing records as `Vec<Vec<u32>>` scatters them
//! across the heap (one allocation per record) and makes per-config
//! materialization in the joint executor allocate `|A| + |B|` vectors
//! per config. A [`RecordArena`] instead keeps **one contiguous token
//! buffer plus an offsets array** — records come out as `&[u32]` slices,
//! the whole table is two allocations, and sequential scans are
//! prefetch-friendly.
//!
//! The arena also tracks the exclusive upper bound of the token ranks it
//! holds ([`RecordArena::rank_bound`]); ranks are dense dictionary
//! indexes, so the bound lets the join engine use `Vec`-indexed postings
//! arrays instead of hash maps.
//!
//! An arena's buffers are either **owned** `Vec`s or **borrowed** from a
//! [`StableBytes`] backing (a memory-mapped artifact file): warm starts
//! can point the join straight at the file's pages with zero decode and
//! zero copy ([`RecordArena::from_stable_parts`]). Either way the hot
//! accessors cost the same — a pointer and a length, resolved once at
//! construction.

use crate::dict::TokenizedTable;
use mc_table::TupleId;
use std::sync::Arc;

/// A byte buffer whose address is stable for the value's whole lifetime.
///
/// Implemented by zero-copy artifact backings (memory-mapped files,
/// pinned heap buffers) so a [`RecordArena`] can cache raw pointers into
/// the bytes at construction and skip per-access indirection.
///
/// # Safety
///
/// Implementors must guarantee that `bytes()` returns the same pointer
/// and length on every call for the lifetime of `self` (the buffer never
/// moves, grows, or shrinks), and that the bytes are never mutated while
/// `self` is alive.
pub unsafe trait StableBytes: Send + Sync {
    /// The backing bytes.
    fn bytes(&self) -> &[u8];
}

/// What keeps a [`RecordArena`]'s buffers alive.
enum Backing {
    /// The arena owns its buffers (the pointers point into these Vecs;
    /// a Vec's heap buffer does not move when the Vec itself moves).
    Owned { tokens: Vec<u32>, offsets: Vec<u32> },
    /// The buffers live inside a stable byte backing (e.g. an mmapped
    /// store artifact); the Arc keeps it alive.
    Mapped(Arc<dyn StableBytes>),
}

/// Records stored back-to-back in one token buffer (CSR layout).
///
/// Record `i` is `tokens[offsets[i] .. offsets[i + 1]]`, a sorted rank
/// multiset exactly as [`TokenizedTable::merged`] would produce it.
pub struct RecordArena {
    tokens: *const u32,
    n_tokens: usize,
    offsets: *const u32,
    n_offsets: usize,
    rank_bound: u32,
    backing: Backing,
}

// SAFETY: the buffers behind the raw pointers are immutable after
// construction and owned/kept alive by `backing` (Vecs, or an Arc to a
// Send + Sync StableBytes), so sharing or moving the arena across
// threads is sound.
unsafe impl Send for RecordArena {}
unsafe impl Sync for RecordArena {}

/// Accumulates owned CSR buffers, then seals them into a [`RecordArena`].
struct ArenaBuilder {
    tokens: Vec<u32>,
    offsets: Vec<u32>,
    rank_bound: u32,
}

impl ArenaBuilder {
    fn with_capacity(total_tokens: usize, rows: usize) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        ArenaBuilder {
            tokens: Vec::with_capacity(total_tokens),
            offsets,
            rank_bound: 0,
        }
    }

    /// Seals the tokens appended since the last record boundary as one
    /// record, updating the rank bound.
    fn close_record(&mut self) {
        let start = *self.offsets.last().expect("offsets never empty") as usize;
        // Records are sorted, so the last token is the largest.
        if let Some(&max) = self.tokens.last() {
            if self.tokens.len() > start {
                self.rank_bound = self.rank_bound.max(max + 1);
            }
        }
        self.offsets.push(self.tokens.len() as u32);
    }

    fn finish(self) -> RecordArena {
        RecordArena::from_owned(self.tokens, self.offsets, self.rank_bound)
    }
}

impl RecordArena {
    /// An empty arena.
    pub fn new() -> Self {
        RecordArena::from_owned(Vec::new(), vec![0], 0)
    }

    /// Seals owned buffers into an arena, caching the data pointers.
    /// Invariants (offsets shape, sortedness) are the caller's problem —
    /// this is the private trusted constructor.
    fn from_owned(tokens: Vec<u32>, offsets: Vec<u32>, rank_bound: u32) -> RecordArena {
        debug_assert!(!offsets.is_empty());
        RecordArena {
            tokens: tokens.as_ptr(),
            n_tokens: tokens.len(),
            offsets: offsets.as_ptr(),
            n_offsets: offsets.len(),
            rank_bound,
            backing: Backing::Owned { tokens, offsets },
        }
    }

    /// Builds the arena for one config directly from a tokenized table:
    /// record `t` is the sorted merge of `attr_indexes`' rank vectors of
    /// tuple `t` (identical to [`TokenizedTable::merged`], without the
    /// per-record allocation).
    pub fn from_tokenized(tok: &TokenizedTable, attr_indexes: &[usize]) -> Self {
        let _span = mc_obs::span!("mc.strsim.arena.build");
        let rows = tok.rows();
        let total: usize = (0..rows as TupleId)
            .map(|t| tok.merged_len(attr_indexes, t))
            .sum();
        let mut b = ArenaBuilder::with_capacity(total, rows);
        for t in 0..rows as TupleId {
            let start = b.tokens.len();
            for &i in attr_indexes {
                b.tokens.extend_from_slice(tok.ranks(i, t));
            }
            b.tokens[start..].sort_unstable();
            b.close_record();
        }
        mc_obs::counter!("mc.strsim.arena.builds").inc();
        mc_obs::counter!("mc.strsim.arena.tokens").add(b.tokens.len() as u64);
        b.finish()
    }

    /// Builds an arena from materialized records (tests, ad-hoc callers).
    /// Each record must already be sorted ascending.
    pub fn from_records<R: AsRef<[u32]>>(records: &[R]) -> Self {
        let total: usize = records.iter().map(|r| r.as_ref().len()).sum();
        let mut b = ArenaBuilder::with_capacity(total, records.len());
        for r in records {
            let r = r.as_ref();
            debug_assert!(r.windows(2).all(|w| w[0] <= w[1]), "records must be sorted");
            b.tokens.extend_from_slice(r);
            b.close_record();
        }
        b.finish()
    }

    /// Number of records.
    #[inline]
    pub fn len(&self) -> usize {
        self.n_offsets - 1
    }

    /// True if the arena holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record `i` as a sorted rank slice.
    #[inline]
    pub fn record(&self, i: TupleId) -> &[u32] {
        let offsets = self.offsets();
        let lo = offsets[i as usize] as usize;
        let hi = offsets[i as usize + 1] as usize;
        &self.tokens()[lo..hi]
    }

    /// Iterates over all records in order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        let tokens = self.tokens();
        self.offsets()
            .windows(2)
            .map(move |w| &tokens[w[0] as usize..w[1] as usize])
    }

    /// Exclusive upper bound on the token ranks held (`max rank + 1`;
    /// 0 when every record is empty). Sizes dense postings arrays.
    #[inline]
    pub fn rank_bound(&self) -> u32 {
        self.rank_bound
    }

    /// Total token count across all records (multiset cardinality).
    #[inline]
    pub fn total_tokens(&self) -> usize {
        self.n_tokens
    }

    /// True when the buffers are borrowed from a [`StableBytes`] backing
    /// rather than owned (diagnostics; behaviour is identical).
    pub fn is_mapped(&self) -> bool {
        matches!(self.backing, Backing::Mapped(_))
    }

    /// The flat token buffer (for serialization; see `mc-store`).
    #[inline]
    pub fn tokens(&self) -> &[u32] {
        // SAFETY: pointer + length were derived from the live backing at
        // construction; the backing is immutable and owned by `self`.
        unsafe { std::slice::from_raw_parts(self.tokens, self.n_tokens) }
    }

    /// The record offsets array, length `len() + 1` (for serialization).
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        // SAFETY: as for `tokens()`.
        unsafe { std::slice::from_raw_parts(self.offsets, self.n_offsets) }
    }

    /// Rebuilds an arena from raw CSR parts, validating the offsets
    /// invariant (starts at 0, non-decreasing, ends at `tokens.len()`)
    /// and recomputing the rank bound. Returns `None` on any violation,
    /// so corrupt store artifacts degrade to cache misses.
    pub fn from_parts(tokens: Vec<u32>, offsets: Vec<u32>) -> Option<RecordArena> {
        let rank_bound = validate_csr(&tokens, &offsets)?;
        Some(RecordArena::from_owned(tokens, offsets, rank_bound))
    }

    /// Zero-copy sibling of [`RecordArena::from_parts`]: borrows the
    /// tokens and offsets arrays directly from `backing`'s bytes (given
    /// as byte ranges into [`StableBytes::bytes`]) instead of copying
    /// them out. Runs the full structural validation — plus alignment
    /// and little-endian checks, since the bytes are reinterpreted in
    /// place — and returns `None` on any violation, so corrupt or
    /// foreign-endian artifacts degrade to cache misses.
    pub fn from_stable_parts(
        backing: Arc<dyn StableBytes>,
        tokens_bytes: std::ops::Range<usize>,
        offsets_bytes: std::ops::Range<usize>,
    ) -> Option<RecordArena> {
        if cfg!(target_endian = "big") {
            return None; // in-place reinterpretation assumes LE files
        }
        let bytes = backing.bytes();
        let tokens = u32_view(bytes, tokens_bytes)?;
        let offsets = u32_view(bytes, offsets_bytes)?;
        let rank_bound = validate_csr(tokens, offsets)?;
        let arena = RecordArena {
            tokens: tokens.as_ptr(),
            n_tokens: tokens.len(),
            offsets: offsets.as_ptr(),
            n_offsets: offsets.len(),
            rank_bound,
            backing: Backing::Mapped(backing),
        };
        Some(arena)
    }
}

/// Checks a byte range is in bounds, 4-aligned and a whole number of
/// `u32`s, and reinterprets it. Little-endian targets only (checked by
/// the caller).
fn u32_view(bytes: &[u8], range: std::ops::Range<usize>) -> Option<&[u32]> {
    let view = bytes.get(range)?;
    if !(view.as_ptr() as usize).is_multiple_of(std::mem::align_of::<u32>())
        || !view.len().is_multiple_of(4)
    {
        return None;
    }
    // SAFETY: in-bounds, aligned, correctly sized; u32 has no invalid
    // bit patterns; the backing is immutable for its lifetime.
    Some(unsafe { std::slice::from_raw_parts(view.as_ptr().cast(), view.len() / 4) })
}

/// Validates CSR invariants shared by owned and mapped arenas; returns
/// the recomputed rank bound.
fn validate_csr(tokens: &[u32], offsets: &[u32]) -> Option<u32> {
    if offsets.first() != Some(&0) {
        return None;
    }
    if *offsets.last().expect("checked non-empty") as usize != tokens.len() {
        return None;
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return None;
    }
    // Every record must be a sorted rank multiset — the join's run
    // counters and postings depend on it.
    if offsets.windows(2).any(|w| {
        tokens[w[0] as usize..w[1] as usize]
            .windows(2)
            .any(|t| t[0] > t[1])
    }) {
        return None;
    }
    Some(tokens.iter().max().map_or(0, |&m| m + 1))
}

impl Default for RecordArena {
    fn default() -> Self {
        RecordArena::new()
    }
}

impl Clone for RecordArena {
    fn clone(&self) -> Self {
        match &self.backing {
            Backing::Owned { tokens, offsets } => {
                RecordArena::from_owned(tokens.clone(), offsets.clone(), self.rank_bound)
            }
            Backing::Mapped(arc) => RecordArena {
                tokens: self.tokens,
                n_tokens: self.n_tokens,
                offsets: self.offsets,
                n_offsets: self.n_offsets,
                rank_bound: self.rank_bound,
                backing: Backing::Mapped(Arc::clone(arc)),
            },
        }
    }
}

impl std::fmt::Debug for RecordArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordArena")
            .field("records", &self.len())
            .field("tokens", &self.total_tokens())
            .field("rank_bound", &self.rank_bound)
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::Tokenizer;
    use mc_table::{AttrId, Schema, Table, Tuple};
    use std::sync::Arc;

    #[test]
    fn from_records_roundtrips_slices() {
        let records: Vec<Vec<u32>> = vec![vec![1, 2, 2, 9], vec![], vec![0, 4]];
        let arena = RecordArena::from_records(&records);
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.record(0), &[1, 2, 2, 9]);
        assert_eq!(arena.record(1), &[] as &[u32]);
        assert_eq!(arena.record(2), &[0, 4]);
        assert_eq!(arena.rank_bound(), 10);
        assert_eq!(arena.total_tokens(), 6);
        let collected: Vec<&[u32]> = arena.iter().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[2], &[0, 4]);
    }

    #[test]
    fn empty_arena_has_zero_bound() {
        let arena = RecordArena::from_records::<Vec<u32>>(&[]);
        assert_eq!(arena.len(), 0);
        assert!(arena.is_empty());
        assert_eq!(arena.rank_bound(), 0);
        let only_empty = RecordArena::from_records(&[Vec::<u32>::new()]);
        assert_eq!(only_empty.rank_bound(), 0);
        assert_eq!(only_empty.len(), 1);
    }

    #[test]
    fn from_tokenized_matches_merged_exactly() {
        let schema = Arc::new(Schema::from_names(["name", "city"]));
        let mut a = Table::new("A", Arc::clone(&schema));
        a.push(Tuple::from_present(["dave smith", "atlanta"]));
        a.push(Tuple::from_present(["joe welson", "new york city"]));
        a.push(Tuple::new(vec![None, None]));
        let mut b = Table::new("B", schema);
        b.push(Tuple::from_present(["david smith", "atlanta"]));
        let attrs = [AttrId(0), AttrId(1)];
        let (ta, _tb, _) = TokenizedTable::build_pair(&a, &b, &attrs, Tokenizer::Word);
        for idx in [vec![0usize], vec![1], vec![0, 1], vec![1, 0]] {
            let arena = RecordArena::from_tokenized(&ta, &idx);
            assert_eq!(arena.len(), ta.rows());
            for t in 0..ta.rows() as TupleId {
                assert_eq!(
                    arena.record(t),
                    ta.merged(&idx, t).as_slice(),
                    "attrs {idx:?} tuple {t}"
                );
            }
        }
    }

    /// A stable backing over an 8-aligned heap buffer, as the store's
    /// heap fallback produces.
    struct PinnedWords(Vec<u64>, usize);

    unsafe impl StableBytes for PinnedWords {
        fn bytes(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.0.as_ptr().cast(), self.1) }
        }
    }

    fn pinned(bytes: &[u8]) -> Arc<dyn StableBytes> {
        let mut buf = vec![0u64; bytes.len().div_ceil(8)];
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), buf.as_mut_ptr().cast(), bytes.len())
        };
        Arc::new(PinnedWords(buf, bytes.len()))
    }

    fn le_bytes(vals: &[u32]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn from_stable_parts_borrows_and_matches_owned() {
        let records: Vec<Vec<u32>> = vec![vec![3, 5, 5, 90], vec![], vec![0, 7]];
        let owned = RecordArena::from_records(&records);
        // Lay out [offsets | tokens] in one buffer, offsets first so the
        // token range starts at a non-zero offset.
        let mut raw = le_bytes(owned.offsets());
        let tokens_at = raw.len();
        raw.extend(le_bytes(owned.tokens()));
        let backing = pinned(&raw);
        let mapped = RecordArena::from_stable_parts(
            Arc::clone(&backing),
            tokens_at..raw.len(),
            0..tokens_at,
        )
        .expect("valid layout maps");
        assert!(mapped.is_mapped());
        assert!(!owned.is_mapped());
        assert_eq!(mapped.len(), owned.len());
        assert_eq!(mapped.rank_bound(), owned.rank_bound());
        assert_eq!(mapped.total_tokens(), owned.total_tokens());
        for t in 0..owned.len() as TupleId {
            assert_eq!(mapped.record(t), owned.record(t));
        }
        // Clones share the backing and keep working after the original
        // and the local Arc are gone.
        let clone = mapped.clone();
        drop(mapped);
        drop(backing);
        assert_eq!(clone.record(0), &[3, 5, 5, 90]);
        let sent = std::thread::spawn(move || clone.record(2).to_vec())
            .join()
            .expect("cross-thread use");
        assert_eq!(sent, vec![0, 7]);
    }

    #[test]
    fn from_stable_parts_rejects_structural_and_alignment_violations() {
        let tokens = le_bytes(&[1, 2, 3]);
        let good_offsets = le_bytes(&[0, 2, 3]);
        let mut raw = good_offsets.clone();
        raw.extend(&tokens);
        let backing = pinned(&raw);
        let ok = |t: std::ops::Range<usize>, o: std::ops::Range<usize>| {
            RecordArena::from_stable_parts(Arc::clone(&backing), t, o).is_some()
        };
        assert!(ok(12..24, 0..12), "baseline is valid");
        assert!(!ok(12..24, 0..8), "offsets not ending at n_tokens");
        assert!(!ok(12..25, 0..12), "token range out of bounds");
        assert!(!ok(12..23, 0..12), "token bytes not a multiple of 4");
        assert!(!ok(13..21, 0..12), "misaligned token range");
        assert!(!ok(12..24, 0..0), "empty offsets");
        // Unsorted record: tokens [2, 1] with offsets [0, 2].
        let mut bad = le_bytes(&[0, 2]);
        bad.extend(le_bytes(&[2, 1]));
        let bad = pinned(&bad);
        assert!(RecordArena::from_stable_parts(bad, 8..16, 0..8).is_none());
    }
}

//! Flat CSR-style record storage for the join hot paths.
//!
//! The top-k SSJ engine touches every record's token slice millions of
//! times per join. Storing records as `Vec<Vec<u32>>` scatters them
//! across the heap (one allocation per record) and makes per-config
//! materialization in the joint executor allocate `|A| + |B|` vectors
//! per config. A [`RecordArena`] instead keeps **one contiguous token
//! buffer plus an offsets array** — records come out as `&[u32]` slices,
//! the whole table is two allocations, and sequential scans are
//! prefetch-friendly.
//!
//! The arena also tracks the exclusive upper bound of the token ranks it
//! holds ([`RecordArena::rank_bound`]); ranks are dense dictionary
//! indexes, so the bound lets the join engine use `Vec`-indexed postings
//! arrays instead of hash maps.

use crate::dict::TokenizedTable;
use mc_table::TupleId;

/// Records stored back-to-back in one token buffer (CSR layout).
///
/// Record `i` is `tokens[offsets[i] .. offsets[i + 1]]`, a sorted rank
/// multiset exactly as [`TokenizedTable::merged`] would produce it.
#[derive(Debug, Clone, Default)]
pub struct RecordArena {
    tokens: Vec<u32>,
    offsets: Vec<u32>,
    rank_bound: u32,
}

impl RecordArena {
    /// An empty arena.
    pub fn new() -> Self {
        RecordArena {
            tokens: Vec::new(),
            offsets: vec![0],
            rank_bound: 0,
        }
    }

    /// Builds the arena for one config directly from a tokenized table:
    /// record `t` is the sorted merge of `attr_indexes`' rank vectors of
    /// tuple `t` (identical to [`TokenizedTable::merged`], without the
    /// per-record allocation).
    pub fn from_tokenized(tok: &TokenizedTable, attr_indexes: &[usize]) -> Self {
        let _span = mc_obs::span!("mc.strsim.arena.build");
        let rows = tok.rows();
        let total: usize = (0..rows as TupleId)
            .map(|t| tok.merged_len(attr_indexes, t))
            .sum();
        let mut arena = RecordArena {
            tokens: Vec::with_capacity(total),
            offsets: Vec::with_capacity(rows + 1),
            rank_bound: 0,
        };
        arena.offsets.push(0);
        for t in 0..rows as TupleId {
            let start = arena.tokens.len();
            for &i in attr_indexes {
                arena.tokens.extend_from_slice(tok.ranks(i, t));
            }
            arena.tokens[start..].sort_unstable();
            arena.close_record();
        }
        mc_obs::counter!("mc.strsim.arena.builds").inc();
        mc_obs::counter!("mc.strsim.arena.tokens").add(arena.tokens.len() as u64);
        arena
    }

    /// Builds an arena from materialized records (tests, ad-hoc callers).
    /// Each record must already be sorted ascending.
    pub fn from_records<R: AsRef<[u32]>>(records: &[R]) -> Self {
        let total: usize = records.iter().map(|r| r.as_ref().len()).sum();
        let mut arena = RecordArena {
            tokens: Vec::with_capacity(total),
            offsets: Vec::with_capacity(records.len() + 1),
            rank_bound: 0,
        };
        arena.offsets.push(0);
        for r in records {
            let r = r.as_ref();
            debug_assert!(r.windows(2).all(|w| w[0] <= w[1]), "records must be sorted");
            arena.tokens.extend_from_slice(r);
            arena.close_record();
        }
        arena
    }

    /// Seals the tokens appended since the last record boundary as one
    /// record, updating the rank bound.
    fn close_record(&mut self) {
        let start = *self.offsets.last().expect("offsets never empty") as usize;
        // Records are sorted, so the last token is the largest.
        if let Some(&max) = self.tokens.last() {
            if self.tokens.len() > start {
                self.rank_bound = self.rank_bound.max(max + 1);
            }
        }
        self.offsets.push(self.tokens.len() as u32);
    }

    /// Number of records.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if the arena holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record `i` as a sorted rank slice.
    #[inline]
    pub fn record(&self, i: TupleId) -> &[u32] {
        let lo = self.offsets[i as usize] as usize;
        let hi = self.offsets[i as usize + 1] as usize;
        &self.tokens[lo..hi]
    }

    /// Iterates over all records in order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        self.offsets
            .windows(2)
            .map(move |w| &self.tokens[w[0] as usize..w[1] as usize])
    }

    /// Exclusive upper bound on the token ranks held (`max rank + 1`;
    /// 0 when every record is empty). Sizes dense postings arrays.
    #[inline]
    pub fn rank_bound(&self) -> u32 {
        self.rank_bound
    }

    /// Total token count across all records (multiset cardinality).
    #[inline]
    pub fn total_tokens(&self) -> usize {
        self.tokens.len()
    }

    /// The flat token buffer (for serialization; see `mc-store`).
    #[inline]
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }

    /// The record offsets array, length `len() + 1` (for serialization).
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Rebuilds an arena from raw CSR parts, validating the offsets
    /// invariant (starts at 0, non-decreasing, ends at `tokens.len()`)
    /// and recomputing the rank bound. Returns `None` on any violation,
    /// so corrupt store artifacts degrade to cache misses.
    pub fn from_parts(tokens: Vec<u32>, offsets: Vec<u32>) -> Option<RecordArena> {
        if offsets.first() != Some(&0) {
            return None;
        }
        if *offsets.last().expect("checked non-empty") as usize != tokens.len() {
            return None;
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return None;
        }
        // Every record must be a sorted rank multiset — the join's run
        // counters and postings depend on it.
        if offsets.windows(2).any(|w| {
            tokens[w[0] as usize..w[1] as usize]
                .windows(2)
                .any(|t| t[0] > t[1])
        }) {
            return None;
        }
        let rank_bound = tokens.iter().max().map_or(0, |&m| m + 1);
        Some(RecordArena {
            tokens,
            offsets,
            rank_bound,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::Tokenizer;
    use mc_table::{AttrId, Schema, Table, Tuple};
    use std::sync::Arc;

    #[test]
    fn from_records_roundtrips_slices() {
        let records: Vec<Vec<u32>> = vec![vec![1, 2, 2, 9], vec![], vec![0, 4]];
        let arena = RecordArena::from_records(&records);
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.record(0), &[1, 2, 2, 9]);
        assert_eq!(arena.record(1), &[] as &[u32]);
        assert_eq!(arena.record(2), &[0, 4]);
        assert_eq!(arena.rank_bound(), 10);
        assert_eq!(arena.total_tokens(), 6);
        let collected: Vec<&[u32]> = arena.iter().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[2], &[0, 4]);
    }

    #[test]
    fn empty_arena_has_zero_bound() {
        let arena = RecordArena::from_records::<Vec<u32>>(&[]);
        assert_eq!(arena.len(), 0);
        assert!(arena.is_empty());
        assert_eq!(arena.rank_bound(), 0);
        let only_empty = RecordArena::from_records(&[Vec::<u32>::new()]);
        assert_eq!(only_empty.rank_bound(), 0);
        assert_eq!(only_empty.len(), 1);
    }

    #[test]
    fn from_tokenized_matches_merged_exactly() {
        let schema = Arc::new(Schema::from_names(["name", "city"]));
        let mut a = Table::new("A", Arc::clone(&schema));
        a.push(Tuple::from_present(["dave smith", "atlanta"]));
        a.push(Tuple::from_present(["joe welson", "new york city"]));
        a.push(Tuple::new(vec![None, None]));
        let mut b = Table::new("B", schema);
        b.push(Tuple::from_present(["david smith", "atlanta"]));
        let attrs = [AttrId(0), AttrId(1)];
        let (ta, _tb, _) = TokenizedTable::build_pair(&a, &b, &attrs, Tokenizer::Word);
        for idx in [vec![0usize], vec![1], vec![0, 1], vec![1, 0]] {
            let arena = RecordArena::from_tokenized(&ta, &idx);
            assert_eq!(arena.len(), ta.rows());
            for t in 0..ta.rows() as TupleId {
                assert_eq!(
                    arena.record(t),
                    ta.merged(&idx, t).as_slice(),
                    "attrs {idx:?} tuple {t}"
                );
            }
        }
    }
}

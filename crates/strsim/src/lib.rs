#![warn(missing_docs)]

//! # mc-strsim
//!
//! String-similarity substrate for MatchCatcher:
//!
//! * [`tokenize`] — word and q-gram tokenizers;
//! * [`dict`] — token interning, document frequencies, and the global token
//!   order used by prefix-filtering joins (rare tokens first);
//! * [`arena`] — flat CSR-style record storage (one contiguous token
//!   buffer + offsets) that the top-k join hot loops operate on;
//! * [`bitmap`] — per-record bitsets over the high-frequency suffix of
//!   the rank space, with a popcount intersection kernel exactly
//!   equivalent to the scalar merge;
//! * [`measures`] — set-based similarity (Jaccard, cosine, Dice, overlap)
//!   on sorted token multisets, plus edit distance, with the per-measure
//!   prefix upper bounds the top-k join relies on;
//! * [`prefix`] — prefix lengths and length filters for threshold joins;
//! * [`join`] — prefix-filtering threshold similarity joins (the execution
//!   engine behind SIM blockers, §2 of the paper);
//! * [`jaro`] — Jaro / Jaro-Winkler similarity for short name-like
//!   strings.
//!
//! Tokens are interned to dense `u32` ranks ordered by ascending document
//! frequency, so a record is a sorted `Vec<u32>` and every similarity
//! computation is a linear merge.

pub mod arena;
pub mod bitmap;
pub mod dict;
pub mod jaro;
pub mod join;
pub mod measures;
pub mod prefix;
pub mod tokenize;

pub use arena::{RecordArena, StableBytes};
pub use bitmap::{overlap_with_bound_bitmap, BitmapIndex};
pub use dict::{TokenDict, TokenizedTable};
pub use jaro::{jaro, jaro_winkler, jaro_winkler_above};
pub use measures::{
    bounded_edit_distance, edit_distance, edit_similarity, multiset_overlap, overlap_bound_key,
    overlap_with_bound, required_overlap, required_overlap_keyed, within_edit_distance, SetMeasure,
};
pub use tokenize::{qgram_tokens, word_tokens, Tokenizer};

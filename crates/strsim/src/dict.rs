//! Token interning and the global token order.
//!
//! Prefix-filtering joins require a total order on tokens; ordering by
//! **ascending document frequency** (rare tokens first) makes prefixes
//! maximally selective \[36\]. The [`TokenDict`] interns tokens to dense ids
//! while counting document frequencies; [`TokenDict::freeze`] then assigns
//! each token a *rank* such that iterating a record's ranks in ascending
//! order visits rare tokens first.
//!
//! [`TokenizedTable`] stores, for each tuple of a table, the per-attribute
//! rank vectors — the representation both the SIM-blocker joins and the
//! debugger's top-k joins operate on.

use crate::tokenize::Tokenizer;
use mc_table::hash::FxHashMap;
use mc_table::{AttrId, Table, TupleId};

/// Interns token strings to dense `u32` ids and counts document frequency.
#[derive(Debug, Default)]
pub struct TokenDict {
    ids: FxHashMap<String, u32>,
    /// Document frequency per token id (number of records containing it).
    df: Vec<u32>,
}

impl TokenDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        TokenDict::default()
    }

    /// Interns `token`, returning its id. Does **not** bump the document
    /// frequency; call [`TokenDict::observe_record`] per record instead.
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.ids.get(token) {
            return id;
        }
        let id = self.df.len() as u32;
        self.ids.insert(token.to_string(), id);
        self.df.push(0);
        id
    }

    /// Interns every token of a record and bumps document frequency once
    /// per distinct token in the record. Returns the record's token ids in
    /// order of appearance (with duplicates).
    pub fn observe_record<'a>(&mut self, tokens: impl Iterator<Item = &'a str>) -> Vec<u32> {
        let mut out: Vec<u32> = tokens.map(|t| self.intern(t)).collect();
        // Bump df once per distinct token.
        let mut seen = out.clone();
        seen.sort_unstable();
        seen.dedup();
        for id in seen {
            self.df[id as usize] += 1;
        }
        out.shrink_to_fit();
        out
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.df.len()
    }

    /// True if no tokens were interned.
    pub fn is_empty(&self) -> bool {
        self.df.is_empty()
    }

    /// Document frequency of a token id.
    pub fn df(&self, id: u32) -> u32 {
        self.df[id as usize]
    }

    /// Computes the global order: returns `rank_of[id]` such that ranks
    /// ascend with `(df, id)`. After freezing, records should be remapped
    /// through this table and sorted ascending.
    pub fn freeze(&self) -> TokenOrder {
        let mut by_df: Vec<u32> = (0..self.df.len() as u32).collect();
        by_df.sort_unstable_by_key(|&id| (self.df[id as usize], id));
        let mut rank_of = vec![0u32; self.df.len()];
        for (rank, &id) in by_df.iter().enumerate() {
            rank_of[id as usize] = rank as u32;
        }
        TokenOrder { rank_of }
    }
}

/// The frozen global token order (ascending document frequency).
#[derive(Debug, Clone)]
pub struct TokenOrder {
    rank_of: Vec<u32>,
}

impl TokenOrder {
    /// Maps a token id to its global rank.
    #[inline]
    pub fn rank(&self, id: u32) -> u32 {
        self.rank_of[id as usize]
    }

    /// Remaps a record's token ids to ranks and sorts ascending (rare
    /// tokens first). Multiplicity is preserved.
    pub fn sort_record(&self, ids: &[u32]) -> Vec<u32> {
        let mut ranks: Vec<u32> = ids.iter().map(|&id| self.rank(id)).collect();
        ranks.sort_unstable();
        ranks
    }

    /// Number of distinct tokens in the order.
    pub fn len(&self) -> usize {
        self.rank_of.len()
    }

    /// True if the order is empty.
    pub fn is_empty(&self) -> bool {
        self.rank_of.is_empty()
    }

    /// The raw `id → rank` table (for serialization; see `mc-store`).
    pub fn rank_table(&self) -> &[u32] {
        &self.rank_of
    }

    /// Rebuilds an order from a raw `id → rank` table previously
    /// obtained from [`TokenOrder::rank_table`].
    pub fn from_rank_table(rank_of: Vec<u32>) -> Self {
        TokenOrder { rank_of }
    }
}

/// Per-attribute tokenized form of a table: for each tuple and attribute,
/// the sorted rank vector of that attribute's value.
///
/// Built once per `(table pair, tokenizer)`; every downstream join then
/// works on integer slices. The concatenation of several attributes'
/// sorted vectors can be merged in O(n) since each is already sorted.
#[derive(Debug)]
pub struct TokenizedTable {
    /// `cols[attr][tuple]` = sorted rank vector.
    cols: Vec<Vec<Vec<u32>>>,
    rows: usize,
}

impl TokenizedTable {
    /// Tokenizes a pair of tables over the given attributes with a shared
    /// dictionary, returning `(tokenized_a, tokenized_b, order)`.
    ///
    /// A shared dictionary is essential: ranks must be comparable across
    /// the two tables.
    pub fn build_pair(
        a: &Table,
        b: &Table,
        attrs: &[AttrId],
        tokenizer: Tokenizer,
    ) -> (TokenizedTable, TokenizedTable, TokenOrder) {
        let (ta, tb, order, _) = TokenizedTable::build_pair_retained(a, b, attrs, tokenizer);
        (ta, tb, order)
    }

    /// Like [`TokenizedTable::build_pair`], but also returns the interning
    /// dictionary so an incremental session ([`IncrementalDict`]) can keep
    /// tokenizing edited records consistently with the frozen order.
    pub fn build_pair_retained(
        a: &Table,
        b: &Table,
        attrs: &[AttrId],
        tokenizer: Tokenizer,
    ) -> (TokenizedTable, TokenizedTable, TokenOrder, TokenDict) {
        let _span = mc_obs::span!("mc.strsim.dict.build");
        let mut dict = TokenDict::new();
        // First pass: intern with df counting, storing raw ids.
        let raw_a = raw_tokenize(a, attrs, tokenizer, &mut dict);
        let raw_b = raw_tokenize(b, attrs, tokenizer, &mut dict);
        let order = dict.freeze();
        mc_obs::counter!("mc.strsim.dict.builds").inc();
        mc_obs::gauge!("mc.strsim.dict.distinct_tokens").set(dict.len() as i64);
        mc_obs::histogram!("mc.strsim.dict.tokens_per_build").record(dict.len() as u64);
        (
            TokenizedTable::from_raw(raw_a, &order, a.len()),
            TokenizedTable::from_raw(raw_b, &order, b.len()),
            order,
            dict,
        )
    }

    fn from_raw(raw: Vec<Vec<Vec<u32>>>, order: &TokenOrder, rows: usize) -> TokenizedTable {
        let cols = raw
            .into_iter()
            .map(|col| col.into_iter().map(|ids| order.sort_record(&ids)).collect())
            .collect();
        TokenizedTable { cols, rows }
    }

    /// The sorted rank vector for `(attr_index, tuple)`, where `attr_index`
    /// is the position of the attribute in the `attrs` slice passed to
    /// [`TokenizedTable::build_pair`].
    #[inline]
    pub fn ranks(&self, attr_index: usize, tuple: TupleId) -> &[u32] {
        &self.cols[attr_index][tuple as usize]
    }

    /// Number of tuples.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of tokenized attributes.
    #[inline]
    pub fn attr_count(&self) -> usize {
        self.cols.len()
    }

    /// Merges the sorted rank vectors of several attributes of one tuple
    /// into a single sorted multiset (the `str_γ(a)` concatenation of §3.1,
    /// in token space). `attr_indexes` refer to positions in the original
    /// `attrs` slice.
    pub fn merged(&self, attr_indexes: &[usize], tuple: TupleId) -> Vec<u32> {
        let total: usize = attr_indexes
            .iter()
            .map(|&i| self.ranks(i, tuple).len())
            .sum();
        let mut out = Vec::with_capacity(total);
        for &i in attr_indexes {
            out.extend_from_slice(self.ranks(i, tuple));
        }
        out.sort_unstable();
        out
    }

    /// Total token count (multiset cardinality) of a tuple over a set of
    /// attributes — `L_γ(a)` in the paper.
    pub fn merged_len(&self, attr_indexes: &[usize], tuple: TupleId) -> usize {
        attr_indexes
            .iter()
            .map(|&i| self.ranks(i, tuple).len())
            .sum()
    }

    /// Rebuilds a tokenized table from per-attribute rank columns (as
    /// read back from a store artifact). Each `cols[attr][tuple]` must be
    /// a sorted rank vector; every column must have `rows` entries.
    /// Returns `None` on shape mismatch so corrupt artifacts degrade to
    /// cache misses instead of panics.
    pub fn from_columns(cols: Vec<Vec<Vec<u32>>>, rows: usize) -> Option<TokenizedTable> {
        if cols.iter().any(|col| col.len() != rows) {
            return None;
        }
        Some(TokenizedTable { cols, rows })
    }

    /// Replaces one tuple's rank vectors (one sorted vector per
    /// attribute, in the same attribute order the table was built with).
    /// Used by incremental sessions after a row edit.
    pub fn set_row(&mut self, tuple: TupleId, per_attr: Vec<Vec<u32>>) {
        assert_eq!(per_attr.len(), self.cols.len(), "attr count mismatch");
        debug_assert!(per_attr.iter().all(|v| v.windows(2).all(|w| w[0] <= w[1])));
        for (col, ranks) in self.cols.iter_mut().zip(per_attr) {
            col[tuple as usize] = ranks;
        }
    }

    /// Appends a new tuple's rank vectors, returning its id.
    pub fn push_row(&mut self, per_attr: Vec<Vec<u32>>) -> TupleId {
        assert_eq!(per_attr.len(), self.cols.len(), "attr count mismatch");
        debug_assert!(per_attr.iter().all(|v| v.windows(2).all(|w| w[0] <= w[1])));
        for (col, ranks) in self.cols.iter_mut().zip(per_attr) {
            col.push(ranks);
        }
        let id = self.rows as TupleId;
        self.rows += 1;
        id
    }
}

/// Session-owned tokenizer state for incremental re-tokenization.
///
/// A cold [`TokenizedTable::build_pair`] orders tokens by ascending
/// document frequency. An incremental session cannot re-derive that
/// order after an edit — re-sorting by the drifted frequencies would
/// renumber every record — so it **freezes** the original ranks and
/// assigns tokens first seen after the freeze the next ranks in order
/// of first appearance. Frequency drift only degrades how selective the
/// rare-first prefix is (a work heuristic); the joins' *results* are
/// rank-permutation-invariant, because every similarity measure is a
/// function of multiset overlaps and lengths, which relabeling token
/// ranks cannot change.
#[derive(Debug)]
pub struct IncrementalDict {
    dict: TokenDict,
    /// `id → rank`; a permutation of `0..len` extended append-only.
    rank_of: Vec<u32>,
}

impl IncrementalDict {
    /// Adopts the dictionary and frozen order of a cold build
    /// ([`TokenizedTable::build_pair_retained`]).
    pub fn new(dict: TokenDict, order: &TokenOrder) -> Self {
        assert_eq!(dict.len(), order.len(), "dict and order disagree");
        IncrementalDict {
            dict,
            rank_of: order.rank_table().to_vec(),
        }
    }

    /// Number of distinct tokens known (original + post-freeze).
    pub fn len(&self) -> usize {
        self.rank_of.len()
    }

    /// True if no tokens are known.
    pub fn is_empty(&self) -> bool {
        self.rank_of.is_empty()
    }

    /// The current `id → rank` table (frozen prefix + appended ranks).
    pub fn rank_table(&self) -> &[u32] {
        &self.rank_of
    }

    /// Tokenizes one value into a sorted rank vector, interning tokens
    /// first seen now at the next free ranks. `None` (missing value)
    /// yields an empty vector.
    pub fn ranks_of_value(&mut self, value: Option<&str>, tokenizer: Tokenizer) -> Vec<u32> {
        let Some(v) = value else {
            return Vec::new();
        };
        let mut ranks: Vec<u32> = tokenizer
            .tokens(v)
            .iter()
            .map(|t| {
                let id = self.dict.intern(t);
                if id as usize == self.rank_of.len() {
                    // First appearance after the freeze: new ids are
                    // dense, so `id == len` exactly when fresh, and the
                    // next free rank equals the table length.
                    self.rank_of.push(id);
                }
                self.rank_of[id as usize]
            })
            .collect();
        ranks.sort_unstable();
        ranks
    }

    /// Re-tokenizes one row of a table over the session's attributes,
    /// returning one sorted rank vector per attribute — the shape
    /// [`TokenizedTable::set_row`] and [`TokenizedTable::push_row`]
    /// take.
    pub fn retokenize_row(
        &mut self,
        table: &Table,
        id: TupleId,
        attrs: &[AttrId],
        tokenizer: Tokenizer,
    ) -> Vec<Vec<u32>> {
        let tuple = table.tuple(id);
        attrs
            .iter()
            .map(|&attr| self.ranks_of_value(tuple.value(attr), tokenizer))
            .collect()
    }
}

/// Interns whole attribute *values* (not tokens) to dense `u32` ids, in
/// first-seen order.
///
/// The batch explain kernel shares one `ValueDict` per attribute across
/// both tables, so id equality ⟺ byte equality and every per-value
/// preparation (tokenization, normalization, numeric parse) runs once
/// per *distinct* value instead of once per row — on Zipfian data the
/// distinct count is a small fraction of the row count.
///
/// Keys borrow from the tables being interned; the dict is a build-time
/// scratch structure, dropped once the columnar ids are materialized.
#[derive(Debug, Default)]
pub struct ValueDict<'a> {
    ids: FxHashMap<&'a str, u32>,
}

impl<'a> ValueDict<'a> {
    /// The column sentinel for a missing (`None`) value.
    pub const MISSING: u32 = u32::MAX;

    /// An empty dictionary.
    pub fn new() -> Self {
        ValueDict::default()
    }

    /// Interns `v`, returning its dense id (assigned in first-seen
    /// order). Returns the existing id on re-interning the same bytes.
    pub fn intern(&mut self, v: &'a str) -> u32 {
        let next = self.ids.len() as u32;
        assert!(next < Self::MISSING, "value dict overflow");
        *self.ids.entry(v).or_insert(next)
    }

    /// Interns an optional value, mapping `None` to [`ValueDict::MISSING`].
    pub fn intern_opt(&mut self, v: Option<&'a str>) -> u32 {
        match v {
            Some(v) => self.intern(v),
            None => Self::MISSING,
        }
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// True when sorted multiset `a` is a *strict* sub-multiset of sorted
/// multiset `b` (every element of `a`, with multiplicity, occurs in `b`,
/// and `a` is strictly smaller). Both slices must be sorted by the same
/// total order; the answer is order-independent, so token *ids* sorted
/// by id work as well as token strings sorted lexicographically.
pub fn is_strict_sorted_subset<T: Ord>(a: &[T], b: &[T]) -> bool {
    if a.len() >= b.len() {
        return false;
    }
    let mut j = 0;
    for x in a {
        while j < b.len() && b[j] < *x {
            j += 1;
        }
        if j >= b.len() || b[j] != *x {
            return false;
        }
        j += 1;
    }
    true
}

fn raw_tokenize(
    table: &Table,
    attrs: &[AttrId],
    tokenizer: Tokenizer,
    dict: &mut TokenDict,
) -> Vec<Vec<Vec<u32>>> {
    let mut cols: Vec<Vec<Vec<u32>>> = attrs
        .iter()
        .map(|_| Vec::with_capacity(table.len()))
        .collect();
    let mut scratch: Vec<String> = Vec::new();
    for (_, tuple) in table.iter() {
        for (ci, &attr) in attrs.iter().enumerate() {
            scratch.clear();
            if let Some(v) = tuple.value(attr) {
                scratch = tokenizer.tokens(v);
            }
            let ids = dict.observe_record(scratch.iter().map(|s| s.as_str()));
            cols[ci].push(ids);
        }
    }
    cols
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_table::{Schema, Tuple};
    use std::sync::Arc;

    fn demo_tables() -> (Table, Table) {
        let schema = Arc::new(Schema::from_names(["name", "city"]));
        let mut a = Table::new("A", Arc::clone(&schema));
        a.push(Tuple::from_present(["dave smith", "atlanta"]));
        a.push(Tuple::from_present(["joe welson", "new york"]));
        let mut b = Table::new("B", schema);
        b.push(Tuple::from_present(["david smith", "atlanta"]));
        (a, b)
    }

    #[test]
    fn value_dict_interns_distinct_values_densely() {
        let mut d = ValueDict::new();
        assert!(d.is_empty());
        assert_eq!(d.intern("atlanta"), 0);
        assert_eq!(d.intern("boston"), 1);
        assert_eq!(d.intern("atlanta"), 0);
        assert_eq!(d.intern_opt(None), ValueDict::MISSING);
        assert_eq!(d.intern_opt(Some("boston")), 1);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn strict_sorted_subset_semantics() {
        assert!(is_strict_sorted_subset(&[1u32, 3], &[1, 2, 3]));
        assert!(!is_strict_sorted_subset(&[1u32, 2, 3], &[1, 2, 3])); // equal: not strict
        assert!(!is_strict_sorted_subset(&[1u32, 4], &[1, 2, 3]));
        assert!(!is_strict_sorted_subset::<u32>(&[], &[])); // empty vs empty
        assert!(is_strict_sorted_subset(&[2u32], &[2, 2]));
        // Multiplicity matters: [2, 2] ⊄ [2, 3].
        assert!(!is_strict_sorted_subset(&[2u32, 2], &[2, 3]));
    }

    #[test]
    fn df_counts_documents_not_occurrences() {
        let mut d = TokenDict::new();
        let r = d.observe_record(["la", "la", "land"].into_iter());
        assert_eq!(r.len(), 3);
        assert_eq!(d.df(r[0]), 1, "duplicate within one record counts once");
        d.observe_record(["la"].into_iter());
        assert_eq!(d.df(r[0]), 2);
    }

    #[test]
    fn rare_tokens_get_low_ranks() {
        let mut d = TokenDict::new();
        let common = d.intern("common");
        let rare = d.intern("rare");
        for _ in 0..5 {
            d.observe_record(["common"].into_iter());
        }
        d.observe_record(["rare"].into_iter());
        let order = d.freeze();
        assert!(order.rank(rare) < order.rank(common));
    }

    #[test]
    fn sort_record_preserves_multiplicity() {
        let mut d = TokenDict::new();
        let ids = d.observe_record(["b", "a", "b"].into_iter());
        let order = d.freeze();
        let sorted = order.sort_record(&ids);
        assert_eq!(sorted.len(), 3);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn tokenized_pair_shares_ranks() {
        let (a, b) = demo_tables();
        let attrs = [AttrId(0), AttrId(1)];
        let (ta, tb, order) = TokenizedTable::build_pair(&a, &b, &attrs, Tokenizer::Word);
        assert_eq!(ta.rows(), 2);
        assert_eq!(tb.rows(), 1);
        assert_eq!(ta.attr_count(), 2);
        assert!(!order.is_empty());
        // "smith" must map to the same rank in both tables: overlap of
        // a0.name and b0.name is exactly 1 (smith).
        let o = crate::measures::multiset_overlap(ta.ranks(0, 0), tb.ranks(0, 0));
        assert_eq!(o, 1);
        // cities are identical
        let oc = crate::measures::multiset_overlap(ta.ranks(1, 0), tb.ranks(1, 0));
        assert_eq!(oc, 1);
    }

    #[test]
    fn merged_is_sorted_concat() {
        let (a, b) = demo_tables();
        let attrs = [AttrId(0), AttrId(1)];
        let (ta, _tb, _order) = TokenizedTable::build_pair(&a, &b, &attrs, Tokenizer::Word);
        let m = ta.merged(&[0, 1], 1);
        assert_eq!(m.len(), 4); // joe welson new york
        assert!(m.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(ta.merged_len(&[0, 1], 1), 4);
    }

    #[test]
    fn incremental_dict_freezes_old_ranks_and_appends_new() {
        let (a, b) = demo_tables();
        let attrs = [AttrId(0), AttrId(1)];
        let (ta, _tb, order, dict) =
            TokenizedTable::build_pair_retained(&a, &b, &attrs, Tokenizer::Word);
        let old_bound = order.len() as u32;
        let mut incr = IncrementalDict::new(dict, &order);
        // Re-tokenizing an unchanged row reproduces the cold vectors.
        let row0 = incr.retokenize_row(&a, 0, &attrs, Tokenizer::Word);
        assert_eq!(row0[0], ta.ranks(0, 0));
        assert_eq!(row0[1], ta.ranks(1, 0));
        // Unseen tokens get fresh ranks beyond the old bound, in first
        // appearance order, deterministically.
        let novel = incr.ranks_of_value(Some("zz yy zz"), Tokenizer::Word);
        assert_eq!(novel.len(), 3);
        assert!(novel.iter().all(|&r| r >= old_bound));
        assert!(novel.windows(2).all(|w| w[0] <= w[1]));
        let again = incr.ranks_of_value(Some("zz yy zz"), Tokenizer::Word);
        assert_eq!(novel, again, "ranks are stable once assigned");
        assert_eq!(incr.len(), order.len() + 2);
        // Missing values tokenize to empty.
        assert!(incr.ranks_of_value(None, Tokenizer::Word).is_empty());
    }

    #[test]
    fn tokenized_table_set_and_push_row() {
        let (a, b) = demo_tables();
        let attrs = [AttrId(0), AttrId(1)];
        let (mut ta, _tb, _order) = TokenizedTable::build_pair(&a, &b, &attrs, Tokenizer::Word);
        ta.set_row(1, vec![vec![0, 3], vec![]]);
        assert_eq!(ta.ranks(0, 1), &[0, 3]);
        assert!(ta.ranks(1, 1).is_empty());
        let id = ta.push_row(vec![vec![7], vec![1, 2]]);
        assert_eq!(id, 2);
        assert_eq!(ta.rows(), 3);
        assert_eq!(ta.ranks(1, 2), &[1, 2]);
    }

    #[test]
    fn missing_values_tokenize_to_empty() {
        let schema = Arc::new(Schema::from_names(["x"]));
        let mut a = Table::new("A", Arc::clone(&schema));
        a.push(Tuple::new(vec![None]));
        let b = Table::new("B", schema);
        let (ta, _, _) = TokenizedTable::build_pair(&a, &b, &[AttrId(0)], Tokenizer::Word);
        assert!(ta.ranks(0, 0).is_empty());
    }
}

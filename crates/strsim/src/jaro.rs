//! Jaro and Jaro-Winkler similarity.
//!
//! Character-level measures tailored to short name-like strings — a
//! staple of record-linkage toolkits (the paper's §2 cites string
//! similarity surveys including them). Used by the feature extractor as
//! an alternative to normalized edit distance for short attributes.

/// Jaro similarity in `[0, 1]`.
///
/// Characters match when equal and within `max(|a|,|b|)/2 − 1` positions;
/// the score combines match fractions and transposition count.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    let mut match_flags_b = vec![false; b.len()];
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                match_flags_b[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    // Transpositions: compare the matched sequences in order.
    let matches_b: Vec<char> = b
        .iter()
        .zip(&match_flags_b)
        .filter(|(_, &f)| f)
        .map(|(&c, _)| c)
        .collect();
    let t = matches_a
        .iter()
        .zip(&matches_b)
        .filter(|(x, y)| x != y)
        .count() as f64
        / 2.0;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by a shared prefix of up to 4
/// characters with scaling factor `p = 0.1`.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(x: f64, y: f64) {
        assert!((x - y).abs() < 1e-3, "{x} vs {y}");
    }

    #[test]
    fn textbook_values() {
        close(jaro("martha", "marhta"), 0.944);
        close(jaro("dixon", "dicksonx"), 0.767);
        close(jaro("jellyfish", "smellyfish"), 0.896);
        close(jaro_winkler("martha", "marhta"), 0.961);
        close(jaro_winkler("dixon", "dicksonx"), 0.813);
    }

    #[test]
    fn identical_and_disjoint() {
        assert_eq!(jaro("smith", "smith"), 1.0);
        assert_eq!(jaro_winkler("smith", "smith"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro_winkler("abc", "xyz"), 0.0);
    }

    #[test]
    fn empty_strings() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("", "a"), 0.0);
    }

    #[test]
    fn symmetry_and_bounds() {
        let pairs = [
            ("welson", "wilson"),
            ("dave", "david"),
            ("a", "ab"),
            ("xy", "yx"),
        ];
        for (a, b) in pairs {
            let j1 = jaro(a, b);
            let j2 = jaro(b, a);
            assert!((j1 - j2).abs() < 1e-12, "jaro not symmetric for {a},{b}");
            assert!((0.0..=1.0).contains(&j1));
            let w = jaro_winkler(a, b);
            assert!(w >= j1 - 1e-12, "winkler boost must not lower the score");
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn winkler_rewards_common_prefix() {
        // Same Jaro profile, different prefixes.
        let with_prefix = jaro_winkler("smith", "smyth");
        let without = jaro_winkler("htims", "htyms");
        assert!(with_prefix >= without);
    }
}

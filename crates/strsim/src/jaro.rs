//! Jaro and Jaro-Winkler similarity.
//!
//! Character-level measures tailored to short name-like strings — a
//! staple of record-linkage toolkits (the paper's §2 cites string
//! similarity surveys including them). Used by the feature extractor as
//! an alternative to normalized edit distance for short attributes.

/// Jaro similarity in `[0, 1]`.
///
/// Characters match when equal and within `max(|a|,|b|)/2 − 1` positions;
/// the score combines match fractions and transposition count.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    let mut match_flags_b = vec![false; b.len()];
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                match_flags_b[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    // Transpositions: compare the matched sequences in order.
    let matches_b: Vec<char> = b
        .iter()
        .zip(&match_flags_b)
        .filter(|(_, &f)| f)
        .map(|(&c, _)| c)
        .collect();
    let t = matches_a
        .iter()
        .zip(&matches_b)
        .filter(|(x, y)| x != y)
        .count() as f64
        / 2.0;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by a shared prefix of up to 4
/// characters with scaling factor `p = 0.1`.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// Threshold-gated Jaro-Winkler: `Some(s)` iff `s > t`, with `s`
/// bit-identical to [`jaro_winkler`].
///
/// The gate comes from a cheap length-only upper bound: with at most
/// `m = min(|a|, |b|)` matches and zero transpositions,
/// `jaro ≤ (m/|a| + m/|b| + 1) / 3`, and the Winkler boost with
/// `ℓ·p ≤ 0.4` lifts any Jaro value `j` to at most `j + 0.4·(1 − j)`.
/// Pairs whose bound is `≤ t` skip the O(|a|·|b|) match scan entirely.
pub fn jaro_winkler_above(a: &str, b: &str, t: f64) -> Option<f64> {
    let la = a.chars().count();
    let lb = b.chars().count();
    if la == 0 || lb == 0 {
        // Degenerate sides bypass the bound (jaro("", "") = 1.0).
        let s = jaro_winkler(a, b);
        return (s > t).then_some(s);
    }
    let m = la.min(lb) as f64;
    let ub_j = (m / la as f64 + m / lb as f64 + 1.0) / 3.0;
    let ub = ub_j + 0.4 * (1.0 - ub_j);
    if ub <= t {
        return None;
    }
    let s = jaro_winkler(a, b);
    (s > t).then_some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(x: f64, y: f64) {
        assert!((x - y).abs() < 1e-3, "{x} vs {y}");
    }

    #[test]
    fn textbook_values() {
        close(jaro("martha", "marhta"), 0.944);
        close(jaro("dixon", "dicksonx"), 0.767);
        close(jaro("jellyfish", "smellyfish"), 0.896);
        close(jaro_winkler("martha", "marhta"), 0.961);
        close(jaro_winkler("dixon", "dicksonx"), 0.813);
    }

    #[test]
    fn identical_and_disjoint() {
        assert_eq!(jaro("smith", "smith"), 1.0);
        assert_eq!(jaro_winkler("smith", "smith"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro_winkler("abc", "xyz"), 0.0);
    }

    #[test]
    fn empty_strings() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("", "a"), 0.0);
    }

    #[test]
    fn symmetry_and_bounds() {
        let pairs = [
            ("welson", "wilson"),
            ("dave", "david"),
            ("a", "ab"),
            ("xy", "yx"),
        ];
        for (a, b) in pairs {
            let j1 = jaro(a, b);
            let j2 = jaro(b, a);
            assert!((j1 - j2).abs() < 1e-12, "jaro not symmetric for {a},{b}");
            assert!((0.0..=1.0).contains(&j1));
            let w = jaro_winkler(a, b);
            assert!(w >= j1 - 1e-12, "winkler boost must not lower the score");
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn jaro_winkler_above_agrees_bitwise() {
        let words = ["martha", "marhta", "dixon", "dicksonx", "", "a", "ab"];
        for a in words {
            for b in words {
                let s = jaro_winkler(a, b);
                for t in [-1.0, 0.0, 0.3, s, 0.9, 1.0] {
                    match jaro_winkler_above(a, b, t) {
                        Some(got) => {
                            assert!(s > t, "a={a:?} b={b:?} t={t}");
                            assert_eq!(got.to_bits(), s.to_bits());
                        }
                        None => assert!(s <= t, "a={a:?} b={b:?} t={t}"),
                    }
                }
            }
        }
    }

    #[test]
    fn jaro_winkler_above_skips_length_skewed_pairs() {
        // min/max length ratio caps the score well below the gate.
        assert_eq!(
            jaro_winkler_above("ab", "abcdefghijklmnopqrstuvwxyz", 0.95),
            None
        );
    }

    #[test]
    fn winkler_rewards_common_prefix() {
        // Same Jaro profile, different prefixes.
        let with_prefix = jaro_winkler("smith", "smyth");
        let without = jaro_winkler("htims", "htyms");
        assert!(with_prefix >= without);
    }
}

//! Similarity measures.
//!
//! Set-based measures operate on **sorted rank vectors** (multisets) from
//! [`crate::dict`]; the overlap of two records is a linear merge. Each
//! measure also exposes the *prefix upper bound* used by the top-k join
//! (§4.1 of the paper): when a record `w` of length `|w|` has had its
//! prefix extended to 1-indexed position `p`, any **new** pair discovered
//! through later tokens shares at most `rem = |w| − p + 1` tokens with `w`,
//! which caps the achievable score.

/// Multiset intersection size of two sorted rank vectors.
///
/// Duplicates count up to their minimum multiplicity, e.g.
/// `[1,1,2] ∩ [1,1,1] = 2`.
#[inline]
pub fn multiset_overlap(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut o) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                o += 1;
                i += 1;
                j += 1;
            }
        }
    }
    o
}

/// The set-based similarity measures supported by the debugger's joins
/// (Theorem 4.2: Jaccard, cosine, overlap, Dice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetMeasure {
    /// `|x ∩ y| / |x ∪ y|` — MatchCatcher's default.
    Jaccard,
    /// `|x ∩ y| / sqrt(|x|·|y|)`.
    Cosine,
    /// `2·|x ∩ y| / (|x| + |y|)`.
    Dice,
    /// Overlap coefficient `|x ∩ y| / min(|x|, |y|)`.
    Overlap,
}

impl SetMeasure {
    /// Score from a precomputed overlap `o` and multiset cardinalities.
    /// Returns 0 when either side is empty.
    #[inline]
    pub fn from_overlap(self, o: usize, la: usize, lb: usize) -> f64 {
        if la == 0 || lb == 0 {
            return 0.0;
        }
        let o = o as f64;
        match self {
            SetMeasure::Jaccard => o / (la as f64 + lb as f64 - o),
            SetMeasure::Cosine => o / ((la as f64) * (lb as f64)).sqrt(),
            SetMeasure::Dice => 2.0 * o / (la as f64 + lb as f64),
            SetMeasure::Overlap => o / la.min(lb) as f64,
        }
    }

    /// Score of two sorted rank vectors.
    pub fn score(self, a: &[u32], b: &[u32]) -> f64 {
        self.from_overlap(multiset_overlap(a, b), a.len(), b.len())
    }

    /// Upper bound on the score of any **new** pair discovered when the
    /// prefix of a record of length `la` is extended to 1-indexed position
    /// `p` (§4.1). `min_other` is a lower bound on the other side's record
    /// length (used only by `Overlap`, whose bound is otherwise vacuous);
    /// pass 1 when unknown.
    ///
    /// Derivations (with `rem = la − p + 1`, the current token plus the
    /// unseen suffix):
    /// * Jaccard: `o ≤ rem`, `|x ∪ y| ≥ la` ⇒ `rem / la`;
    /// * Cosine: `o ≤ min(rem, lb)`; maximizing over `lb` gives
    ///   `sqrt(rem / la)`;
    /// * Dice: maximized at `lb = rem` ⇒ `2·rem / (la + rem)`;
    /// * Overlap: `o ≤ rem` and `min(la, lb) ≥ min(la, min_other)` ⇒
    ///   `min(1, rem / min(la, min_other))`.
    #[inline]
    pub fn prefix_ubound(self, la: usize, p: usize, min_other: usize) -> f64 {
        debug_assert!(p >= 1 && p <= la);
        let rem = (la - p + 1) as f64;
        let la_f = la as f64;
        match self {
            SetMeasure::Jaccard => rem / la_f,
            SetMeasure::Cosine => (rem / la_f).sqrt(),
            SetMeasure::Dice => 2.0 * rem / (la_f + rem),
            SetMeasure::Overlap => (rem / la.min(min_other.max(1)) as f64).min(1.0),
        }
    }

    /// A short label ("jac", "cos", "dice", "ovl") used in blocker names.
    pub fn label(self) -> &'static str {
        match self {
            SetMeasure::Jaccard => "jac",
            SetMeasure::Cosine => "cos",
            SetMeasure::Dice => "dice",
            SetMeasure::Overlap => "ovl",
        }
    }

    /// All four measures (for sweeps/tests).
    pub const ALL: [SetMeasure; 4] = [
        SetMeasure::Jaccard,
        SetMeasure::Cosine,
        SetMeasure::Dice,
        SetMeasure::Overlap,
    ];
}

/// Levenshtein edit distance between two strings (character-level), using
/// the classic two-row dynamic program. O(|a|·|b|) time, O(min) space.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// True iff `edit_distance(a, b) ≤ k`, computed with a banded dynamic
/// program in O(k·min(|a|,|b|)) — the hot path of `ed(…) ≤ k` blockers.
pub fn within_edit_distance(a: &str, b: &str, k: usize) -> bool {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    if a.len() - b.len() > k {
        return false;
    }
    if b.is_empty() {
        return a.len() <= k;
    }
    // Banded DP: cell (i, j) only matters when |i − j| ≤ k.
    let inf = k + 1;
    let mut prev = vec![inf; b.len() + 1];
    let mut cur = vec![inf; b.len() + 1];
    for (j, p) in prev.iter_mut().enumerate().take(k.min(b.len()) + 1) {
        *p = j;
    }
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(k);
        let hi = (i + k).min(b.len() - 1);
        if lo > hi {
            return false;
        }
        cur[lo] = if lo == 0 { i + 1 } else { inf };
        let mut row_min = cur[lo];
        for j in lo..=hi {
            let cost = usize::from(*ca != b[j]);
            let mut best = prev[j] + cost;
            if prev[j + 1] < inf {
                best = best.min(prev[j + 1] + 1);
            }
            if cur[j] < inf {
                best = best.min(cur[j] + 1);
            }
            cur[j + 1] = best.min(inf);
            row_min = row_min.min(cur[j + 1]);
        }
        if row_min > k {
            return false;
        }
        std::mem::swap(&mut prev, &mut cur);
        for c in cur.iter_mut() {
            *c = inf;
        }
    }
    prev[b.len()] <= k
}

/// Normalized edit similarity `1 − ed(a,b) / max(|a|,|b|)` ∈ [0, 1];
/// returns 1 for two empty strings.
pub fn edit_similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let m = la.max(lb);
    if m == 0 {
        return 1.0;
    }
    1.0 - edit_distance(a, b) as f64 / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_multiset_semantics() {
        assert_eq!(multiset_overlap(&[1, 1, 2], &[1, 1, 1]), 2);
        assert_eq!(multiset_overlap(&[1, 2, 3], &[4, 5]), 0);
        assert_eq!(multiset_overlap(&[], &[1]), 0);
        assert_eq!(multiset_overlap(&[1, 2, 3], &[1, 2, 3]), 3);
    }

    #[test]
    fn jaccard_matches_paper_example() {
        // Figure 6: w = [a b c e f], x = [a b c e f...]: s(x, w) = 0.8 for
        // two 4-token strings sharing... reconstructed small case:
        let a = [1, 2, 3, 4];
        let b = [1, 2, 3, 5];
        assert!((SetMeasure::Jaccard.score(&a, &b) - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn measure_values_agree_with_formulas() {
        let a = [1, 2, 3, 4];
        let b = [3, 4, 5];
        let o = multiset_overlap(&a, &b) as f64; // 2
        assert!((SetMeasure::Jaccard.score(&a, &b) - o / 5.0).abs() < 1e-12);
        assert!((SetMeasure::Cosine.score(&a, &b) - o / 12f64.sqrt()).abs() < 1e-12);
        assert!((SetMeasure::Dice.score(&a, &b) - 2.0 * o / 7.0).abs() < 1e-12);
        assert!((SetMeasure::Overlap.score(&a, &b) - o / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sides_score_zero() {
        for m in SetMeasure::ALL {
            assert_eq!(m.score(&[], &[1, 2]), 0.0);
            assert_eq!(m.score(&[1, 2], &[]), 0.0);
        }
    }

    #[test]
    fn prefix_ubound_from_figure_6() {
        // Extending the prefix of a 4-token string to position 2 caps new
        // Jaccard pairs at 3/4 = 0.75 (paper §4.1 walkthrough).
        assert!((SetMeasure::Jaccard.prefix_ubound(4, 2, 1) - 0.75).abs() < 1e-12);
        // First position caps at 1.0.
        assert_eq!(SetMeasure::Jaccard.prefix_ubound(4, 1, 1), 1.0);
        // Last position caps at 1/|w|.
        assert_eq!(SetMeasure::Jaccard.prefix_ubound(4, 4, 1), 0.25);
    }

    #[test]
    fn prefix_ubound_is_admissible() {
        // For every measure and every split point, no pair sharing only
        // tokens at or after position p can beat the bound.
        let a: Vec<u32> = (0..8).collect();
        for m in SetMeasure::ALL {
            for p in 1..=a.len() {
                // Adversarial partner: exactly the suffix starting at p-1.
                let b: Vec<u32> = a[p - 1..].to_vec();
                let bound = m.prefix_ubound(a.len(), p, 1);
                let score = m.score(&a, &b);
                assert!(
                    score <= bound + 1e-12,
                    "{m:?} p={p}: score {score} > bound {bound}"
                );
            }
        }
    }

    #[test]
    fn bounds_decrease_with_position() {
        for m in SetMeasure::ALL {
            let mut prev = f64::INFINITY;
            for p in 1..=10 {
                let u = m.prefix_ubound(10, p, 2);
                assert!(u <= prev + 1e-12);
                prev = u;
            }
        }
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("welson", "wilson"), 1);
        assert_eq!(edit_distance("altanta", "atlanta"), 2);
    }

    #[test]
    fn banded_check_agrees_with_full_dp() {
        let words = ["smith", "smyth", "schmidt", "welson", "wilson", "", "w"];
        for a in words {
            for b in words {
                let d = edit_distance(a, b);
                for k in 0..5 {
                    assert_eq!(
                        within_edit_distance(a, b, k),
                        d <= k,
                        "a={a:?} b={b:?} k={k} d={d}"
                    );
                }
            }
        }
    }

    #[test]
    fn edit_similarity_range() {
        assert_eq!(edit_similarity("", ""), 1.0);
        assert_eq!(edit_similarity("abc", "abc"), 1.0);
        assert_eq!(edit_similarity("abc", "xyz"), 0.0);
        let s = edit_similarity("welson", "wilson");
        assert!((s - (1.0 - 1.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn labels() {
        assert_eq!(SetMeasure::Jaccard.label(), "jac");
        assert_eq!(SetMeasure::Cosine.label(), "cos");
        assert_eq!(SetMeasure::Dice.label(), "dice");
        assert_eq!(SetMeasure::Overlap.label(), "ovl");
    }
}

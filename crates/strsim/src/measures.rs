//! Similarity measures.
//!
//! Set-based measures operate on **sorted rank vectors** (multisets) from
//! [`crate::dict`]; the overlap of two records is a linear merge. Each
//! measure also exposes the *prefix upper bound* used by the top-k join
//! (§4.1 of the paper): when a record `w` of length `|w|` has had its
//! prefix extended to 1-indexed position `p`, any **new** pair discovered
//! through later tokens shares at most `rem = |w| − p + 1` tokens with `w`,
//! which caps the achievable score.

/// Multiset intersection size of two sorted rank vectors.
///
/// Duplicates count up to their minimum multiplicity, e.g.
/// `[1,1,2] ∩ [1,1,1] = 2`.
#[inline]
pub fn multiset_overlap(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut o) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                o += 1;
                i += 1;
                j += 1;
            }
        }
    }
    o
}

/// Mismatch advances on one side before the merge switches from linear
/// stepping to galloping (exponential + binary search) — tuned for the
/// length-skewed pairs where one record's tokens cluster far apart in
/// the other's rank range.
const GALLOP_AFTER: u32 = 7;

/// First index `>= lo` with `v[idx] >= target` (exponential search from
/// `lo`, then binary search over the bracketed range).
#[inline]
fn gallop_to(v: &[u32], lo: usize, target: u32) -> usize {
    let n = v.len();
    if lo >= n || v[lo] >= target {
        return lo;
    }
    // Invariant: v[prev] < target.
    let mut prev = lo;
    let mut step = 1usize;
    let mut hi = lo + 1;
    while hi < n && v[hi] < target {
        prev = hi;
        hi += step;
        step <<= 1;
    }
    let (mut l, mut r) = (prev + 1, hi.min(n));
    while l < r {
        let m = l + (r - l) / 2;
        if v[m] < target {
            l = m + 1;
        } else {
            r = m;
        }
    }
    l
}

/// Threshold-aware multiset merge: returns `Some(o)` — with `o` the exact
/// [`multiset_overlap`] — **iff** `o >= o_min`, and `None` as soon as the
/// remaining tokens cannot reach `o_min` (`o + min(rem_a, rem_b) < o_min`,
/// checked on mismatch advances; equal steps keep the bound invariant).
///
/// With `o_min = 0` this is a plain exact merge that always returns
/// `Some`. Long runs of one-sided mismatches switch to a galloping
/// advance, so length-skewed pairs abort in far fewer comparisons than
/// the linear merge would need.
#[inline]
pub fn overlap_with_bound(a: &[u32], b: &[u32], o_min: usize) -> Option<usize> {
    // PPJoin-style length filter: the overlap never exceeds the shorter
    // side, so an unreachable bound refutes the pair with zero merge work.
    if a.len().min(b.len()) < o_min {
        return None;
    }
    let (mut i, mut j, mut o) = (0usize, 0usize, 0usize);
    let (mut run_a, mut run_b) = (0u32, 0u32);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                o += 1;
                i += 1;
                j += 1;
                run_a = 0;
                run_b = 0;
            }
            std::cmp::Ordering::Less => {
                i += 1;
                run_a += 1;
                if run_a >= GALLOP_AFTER {
                    i = gallop_to(a, i, b[j]);
                    run_a = 0;
                }
                if o + (a.len() - i).min(b.len() - j) < o_min {
                    return None;
                }
            }
            std::cmp::Ordering::Greater => {
                j += 1;
                run_b += 1;
                if run_b >= GALLOP_AFTER {
                    j = gallop_to(b, j, a[i]);
                    run_b = 0;
                }
                if o + (a.len() - i).min(b.len() - j) < o_min {
                    return None;
                }
            }
        }
    }
    (o >= o_min).then_some(o)
}

/// Popcount of the bitwise AND of two equal-length `u64` word slices —
/// the intersection-size kernel behind the bitmap path
/// ([`crate::bitmap`]).
///
/// Four independent accumulators over 4-word chunks keep the loop free
/// of a serial dependency, so the compiler can vectorize it (`count_ones`
/// plus lane adds map onto SSE/AVX2/NEON popcount idioms); the remainder
/// falls back to a scalar fold.
#[inline]
pub fn word_intersection_count(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0u64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (wa, wb) in ca.by_ref().zip(cb.by_ref()) {
        acc[0] += (wa[0] & wb[0]).count_ones() as u64;
        acc[1] += (wa[1] & wb[1]).count_ones() as u64;
        acc[2] += (wa[2] & wb[2]).count_ones() as u64;
        acc[3] += (wa[3] & wb[3]).count_ones() as u64;
    }
    let mut total = acc.iter().sum::<u64>() as usize;
    for (wa, wb) in ca.remainder().iter().zip(cb.remainder()) {
        total += (wa & wb).count_ones() as usize;
    }
    total
}

/// The minimal integer overlap `o` with
/// `measure.from_overlap(o, la, lb) > t` (**strictly**), or
/// `min(la, lb) + 1` when no reachable overlap beats `t` — the
/// measure-specific *required overlap* the top-k join derives from its
/// heap minimum.
///
/// The closed-form inversion of each measure gives an estimate within a
/// unit of the boundary; the final answer is then settled by comparing
/// against [`SetMeasure::from_overlap`] itself (monotone in `o`), so the
/// result is exact regardless of floating-point rounding in the estimate.
pub fn required_overlap(measure: SetMeasure, t: f64, la: usize, lb: usize) -> usize {
    if t < 0.0 {
        return 0;
    }
    let min_len = la.min(lb);
    if la == 0 || lb == 0 {
        // from_overlap is 0 on empty sides: never strictly above t >= 0.
        return min_len + 1;
    }
    let (la_f, lb_f) = (la as f64, lb as f64);
    let est = match measure {
        // o/(la+lb-o) > t  ⇔  o > t(la+lb)/(1+t)
        SetMeasure::Jaccard => t * (la_f + lb_f) / (1.0 + t),
        // o > t·sqrt(la·lb)
        SetMeasure::Cosine => t * (la_f * lb_f).sqrt(),
        // 2o/(la+lb) > t  ⇔  o > t(la+lb)/2
        SetMeasure::Dice => t * (la_f + lb_f) / 2.0,
        // o > t·min(la,lb)
        SetMeasure::Overlap => t * min_len as f64,
    };
    let mut o = (est.max(0.0).floor() as usize).min(min_len + 1);
    while o > 0 && measure.from_overlap(o - 1, la, lb) > t {
        o -= 1;
    }
    while o <= min_len && measure.from_overlap(o, la, lb) <= t {
        o += 1;
    }
    o
}

/// The measure-specific scalar [`required_overlap`] actually depends on:
/// Jaccard's and Dice's bounds are functions of `la + lb` alone,
/// Overlap's of `min(la, lb)`, Cosine's of `la · lb`. Callers can
/// therefore memoize [`required_overlap_keyed`] per gate in a tiny dense
/// table instead of re-deriving the bound for every pair.
#[inline]
pub fn overlap_bound_key(measure: SetMeasure, la: usize, lb: usize) -> usize {
    match measure {
        SetMeasure::Jaccard | SetMeasure::Dice => la + lb,
        SetMeasure::Overlap => la.min(lb),
        SetMeasure::Cosine => la * lb,
    }
}

/// Exact integer square root (monotone; no floating-point edge cases).
fn isqrt(n: usize) -> usize {
    let mut c = (n as f64).sqrt() as usize;
    while (c + 1).checked_mul(c + 1).is_some_and(|s| s <= n) {
        c += 1;
    }
    while c.checked_mul(c).is_none_or(|s| s > n) {
        c -= 1;
    }
    c
}

/// [`required_overlap`] as a function of [`overlap_bound_key`] alone.
///
/// Outcome-equivalent under [`overlap_with_bound`]'s contract: for every
/// `(la, lb)` with this key, the result equals
/// `required_overlap(measure, t, la, lb)` whenever that bound is
/// reachable (`≤ min(la, lb)`), and exceeds `min(la, lb)` whenever the
/// exact bound does — the two may then differ in value, but both refute
/// the pair through the length filter. The score comparisons reuse the
/// exact [`SetMeasure::from_overlap`] float expressions (integer sums
/// and products below 2⁵³ are exact in `f64`), so the boundary is
/// bit-for-bit the same.
pub fn required_overlap_keyed(measure: SetMeasure, t: f64, key: usize) -> usize {
    if t < 0.0 {
        return 0;
    }
    if key == 0 {
        // Only empty-sided pairs have key 0: nothing beats t ≥ 0.
        return 1;
    }
    // The largest min(la, lb) any pair with this key can have — the walk
    // cap that keeps unreachable results above every such pair's length
    // filter.
    let cap = match measure {
        SetMeasure::Jaccard | SetMeasure::Dice => key / 2,
        SetMeasure::Overlap => key,
        SetMeasure::Cosine => isqrt(key),
    };
    let key_f = key as f64;
    let f = |o: usize| -> f64 {
        let of = o as f64;
        match measure {
            SetMeasure::Jaccard => of / (key_f - of),
            SetMeasure::Cosine => of / key_f.sqrt(),
            SetMeasure::Dice => 2.0 * of / key_f,
            SetMeasure::Overlap => of / key_f,
        }
    };
    let est = match measure {
        SetMeasure::Jaccard => t * key_f / (1.0 + t),
        SetMeasure::Cosine => t * key_f.sqrt(),
        SetMeasure::Dice => t * key_f / 2.0,
        SetMeasure::Overlap => t * key_f,
    };
    let mut o = (est.max(0.0).floor() as usize).min(cap + 1);
    while o > 0 && f(o - 1) > t {
        o -= 1;
    }
    while o <= cap && f(o) <= t {
        o += 1;
    }
    o
}

/// The set-based similarity measures supported by the debugger's joins
/// (Theorem 4.2: Jaccard, cosine, overlap, Dice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetMeasure {
    /// `|x ∩ y| / |x ∪ y|` — MatchCatcher's default.
    Jaccard,
    /// `|x ∩ y| / sqrt(|x|·|y|)`.
    Cosine,
    /// `2·|x ∩ y| / (|x| + |y|)`.
    Dice,
    /// Overlap coefficient `|x ∩ y| / min(|x|, |y|)`.
    Overlap,
}

impl SetMeasure {
    /// Score from a precomputed overlap `o` and multiset cardinalities.
    /// Returns 0 when either side is empty.
    #[inline]
    pub fn from_overlap(self, o: usize, la: usize, lb: usize) -> f64 {
        if la == 0 || lb == 0 {
            return 0.0;
        }
        let o = o as f64;
        match self {
            SetMeasure::Jaccard => o / (la as f64 + lb as f64 - o),
            SetMeasure::Cosine => o / ((la as f64) * (lb as f64)).sqrt(),
            SetMeasure::Dice => 2.0 * o / (la as f64 + lb as f64),
            SetMeasure::Overlap => o / la.min(lb) as f64,
        }
    }

    /// Score of two sorted rank vectors.
    pub fn score(self, a: &[u32], b: &[u32]) -> f64 {
        self.from_overlap(multiset_overlap(a, b), a.len(), b.len())
    }

    /// Threshold-gated score: `Some(s)` **iff** `score(a, b) > t`
    /// (strictly), with `s` bit-identical to [`SetMeasure::score`]; `None`
    /// means the score is provably `<= t`, established with as little
    /// merge work as possible ([`required_overlap`] length filter, then
    /// [`overlap_with_bound`]). `t < 0` never refutes, so
    /// `score_above(a, b, -1.0)` is an exact scoring path.
    #[inline]
    pub fn score_above(self, a: &[u32], b: &[u32], t: f64) -> Option<f64> {
        let o_min = required_overlap(self, t, a.len(), b.len());
        let o = overlap_with_bound(a, b, o_min)?;
        Some(self.from_overlap(o, a.len(), b.len()))
    }

    /// Upper bound on the score of any **new** pair discovered when the
    /// prefix of a record of length `la` is extended to 1-indexed position
    /// `p` (§4.1). `min_other` is a lower bound on the other side's record
    /// length (used only by `Overlap`, whose bound is otherwise vacuous);
    /// pass 1 when unknown.
    ///
    /// Derivations (with `rem = la − p + 1`, the current token plus the
    /// unseen suffix):
    /// * Jaccard: `o ≤ rem`, `|x ∪ y| ≥ la` ⇒ `rem / la`;
    /// * Cosine: `o ≤ min(rem, lb)`; maximizing over `lb` gives
    ///   `sqrt(rem / la)`;
    /// * Dice: maximized at `lb = rem` ⇒ `2·rem / (la + rem)`;
    /// * Overlap: `o ≤ rem` and `min(la, lb) ≥ min(la, min_other)` ⇒
    ///   `min(1, rem / min(la, min_other))`.
    #[inline]
    pub fn prefix_ubound(self, la: usize, p: usize, min_other: usize) -> f64 {
        debug_assert!(p >= 1 && p <= la);
        let rem = (la - p + 1) as f64;
        let la_f = la as f64;
        match self {
            SetMeasure::Jaccard => rem / la_f,
            SetMeasure::Cosine => (rem / la_f).sqrt(),
            SetMeasure::Dice => 2.0 * rem / (la_f + rem),
            SetMeasure::Overlap => (rem / la.min(min_other.max(1)) as f64).min(1.0),
        }
    }

    /// A short label ("jac", "cos", "dice", "ovl") used in blocker names.
    pub fn label(self) -> &'static str {
        match self {
            SetMeasure::Jaccard => "jac",
            SetMeasure::Cosine => "cos",
            SetMeasure::Dice => "dice",
            SetMeasure::Overlap => "ovl",
        }
    }

    /// All four measures (for sweeps/tests).
    pub const ALL: [SetMeasure; 4] = [
        SetMeasure::Jaccard,
        SetMeasure::Cosine,
        SetMeasure::Dice,
        SetMeasure::Overlap,
    ];
}

/// Levenshtein edit distance between two strings (character-level).
///
/// Implemented by iterative deepening over [`bounded_edit_distance`]: the
/// band starts at the length difference (a lower bound on the distance)
/// and doubles until the exact distance fits, so similar strings — the
/// common case behind edit features and misspelling checks — cost
/// O(d·min(|a|,|b|)) instead of the classic full O(|a|·|b|) table.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let la = a.chars().count();
    let lb = b.chars().count();
    let max = la.max(lb);
    let mut k = la.abs_diff(lb).max(1).min(max.max(1));
    loop {
        if let Some(d) = bounded_edit_distance(a, b, k) {
            return d;
        }
        // k = max always succeeds (the distance never exceeds max).
        k = (k * 2).min(max);
    }
}

/// The exact edit distance when it is `<= k`, else `None` — a banded
/// dynamic program over the `|i − j| <= k` diagonal strip in
/// O(k·min(|a|,|b|)). Cells with a true distance `<= k` never route
/// through the strip's exterior (any such path costs more than `k`), so
/// every returned value is exact.
pub fn bounded_edit_distance(a: &str, b: &str, k: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut scratch = EditScratch::default();
    bounded_edit_distance_chars(&a, &b, k, &mut scratch)
}

/// Reusable row buffers for [`bounded_edit_distance_chars`], so batch
/// callers diagnosing millions of pairs pay zero allocations per call
/// after the first.
#[derive(Debug, Default)]
pub struct EditScratch {
    prev: Vec<usize>,
    cur: Vec<usize>,
}

/// [`bounded_edit_distance`] over pre-collected char slices with
/// caller-owned scratch — the allocation-free kernel batch engines call
/// in their hot loop. Semantics are identical to the string version
/// (which delegates here).
pub fn bounded_edit_distance_chars(
    a: &[char],
    b: &[char],
    k: usize,
    scratch: &mut EditScratch,
) -> Option<usize> {
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    if a.len() - b.len() > k {
        return None;
    }
    if b.is_empty() {
        return (a.len() <= k).then_some(a.len());
    }
    let inf = k + 1;
    scratch.prev.clear();
    scratch.prev.resize(b.len() + 1, inf);
    scratch.cur.clear();
    scratch.cur.resize(b.len() + 1, inf);
    let (mut prev, mut cur) = (&mut scratch.prev, &mut scratch.cur);
    for (j, p) in prev.iter_mut().enumerate().take(k.min(b.len()) + 1) {
        *p = j;
    }
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(k);
        let hi = (i + k).min(b.len() - 1);
        if lo > hi {
            return None;
        }
        cur[lo] = if lo == 0 { i + 1 } else { inf };
        let mut row_min = cur[lo];
        for j in lo..=hi {
            let cost = usize::from(*ca != b[j]);
            let mut best = prev[j] + cost;
            if prev[j + 1] < inf {
                best = best.min(prev[j + 1] + 1);
            }
            if cur[j] < inf {
                best = best.min(cur[j] + 1);
            }
            cur[j + 1] = best.min(inf);
            row_min = row_min.min(cur[j + 1]);
        }
        if row_min > k {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
        for c in cur.iter_mut() {
            *c = inf;
        }
    }
    (prev[b.len()] <= k).then_some(prev[b.len()])
}

/// True iff `edit_distance(a, b) ≤ k` — the hot path of `ed(…) ≤ k`
/// blockers, sharing the banded program of [`bounded_edit_distance`].
pub fn within_edit_distance(a: &str, b: &str, k: usize) -> bool {
    bounded_edit_distance(a, b, k).is_some()
}

/// Normalized edit similarity `1 − ed(a,b) / max(|a|,|b|)` ∈ [0, 1];
/// returns 1 for two empty strings.
pub fn edit_similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let m = la.max(lb);
    if m == 0 {
        return 1.0;
    }
    1.0 - edit_distance(a, b) as f64 / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic full-table two-row DP — the reference the banded/deepening
    /// paths are checked against.
    fn edit_distance_dp(a: &str, b: &str) -> usize {
        let a: Vec<char> = a.chars().collect();
        let b: Vec<char> = b.chars().collect();
        let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
        if b.is_empty() {
            return a.len();
        }
        let mut prev: Vec<usize> = (0..=b.len()).collect();
        let mut cur = vec![0usize; b.len() + 1];
        for (i, ca) in a.iter().enumerate() {
            cur[0] = i + 1;
            for (j, cb) in b.iter().enumerate() {
                let cost = usize::from(ca != cb);
                cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[b.len()]
    }

    #[test]
    fn overlap_with_bound_matches_exact_merge() {
        let cases: [(&[u32], &[u32]); 6] = [
            (&[1, 1, 2], &[1, 1, 1]),
            (&[1, 2, 3], &[4, 5]),
            (&[], &[1]),
            (&[1, 2, 3], &[1, 2, 3]),
            (&[1, 5, 9, 13], &[2, 5, 9, 20, 21, 22]),
            (&[7], &[1, 2, 3, 4, 5, 6, 7]),
        ];
        for (a, b) in cases {
            let o = multiset_overlap(a, b);
            for o_min in 0..=(a.len().min(b.len()) + 2) {
                let got = overlap_with_bound(a, b, o_min);
                if o >= o_min {
                    assert_eq!(got, Some(o), "a={a:?} b={b:?} o_min={o_min}");
                } else {
                    assert_eq!(got, None, "a={a:?} b={b:?} o_min={o_min}");
                }
            }
        }
    }

    #[test]
    fn overlap_with_bound_gallops_through_skew() {
        // One short record against a long run that forces galloping.
        let a: Vec<u32> = vec![500, 1000, 2000];
        let b: Vec<u32> = (0..1500u32).collect();
        assert_eq!(overlap_with_bound(&a, &b, 0), Some(2));
        assert_eq!(overlap_with_bound(&a, &b, 2), Some(2));
        assert_eq!(overlap_with_bound(&a, &b, 3), None);
        // Duplicates across a gallop boundary keep multiset semantics.
        let c: Vec<u32> = vec![9, 9, 9];
        let mut d: Vec<u32> = (0..100u32).collect();
        d.extend([9, 9].iter());
        d.sort_unstable();
        assert_eq!(overlap_with_bound(&c, &d, 0), Some(3));
    }

    #[test]
    fn required_overlap_is_minimal_and_strict() {
        for m in SetMeasure::ALL {
            for la in 1..=12usize {
                for lb in 1..=12usize {
                    for t10 in 0..=10 {
                        let t = t10 as f64 / 10.0;
                        let o_min = required_overlap(m, t, la, lb);
                        let min_len = la.min(lb);
                        assert!(o_min <= min_len + 1);
                        if o_min > 0 {
                            assert!(
                                m.from_overlap(o_min - 1, la, lb) <= t,
                                "{m:?} t={t} la={la} lb={lb}: o_min {o_min} not minimal"
                            );
                        }
                        if o_min <= min_len {
                            assert!(
                                m.from_overlap(o_min, la, lb) > t,
                                "{m:?} t={t} la={la} lb={lb}: o_min {o_min} not sufficient"
                            );
                        }
                    }
                }
            }
        }
        // Negative gate never refutes; empty sides always refute.
        assert_eq!(required_overlap(SetMeasure::Jaccard, -1.0, 4, 4), 0);
        assert_eq!(required_overlap(SetMeasure::Jaccard, 0.0, 0, 4), 1);
    }

    #[test]
    fn required_overlap_keyed_is_outcome_equivalent() {
        // The keyed bound must equal the exact one whenever it is
        // reachable, and both must exceed min(la, lb) whenever either is
        // unreachable — the only distinction `overlap_with_bound` can
        // observe.
        for m in SetMeasure::ALL {
            for la in 0..=14usize {
                for lb in 0..=14usize {
                    for t10 in -1..=10 {
                        let t = t10 as f64 / 10.0;
                        let exact = required_overlap(m, t, la, lb);
                        let keyed = required_overlap_keyed(m, t, overlap_bound_key(m, la, lb));
                        let min_len = la.min(lb);
                        if exact <= min_len {
                            assert_eq!(
                                keyed, exact,
                                "{m:?} t={t} la={la} lb={lb}: keyed diverges on reachable bound"
                            );
                        } else {
                            assert!(
                                keyed > min_len,
                                "{m:?} t={t} la={la} lb={lb}: keyed {keyed} lets an \
                                 unreachable bound ({exact}) through the length filter"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn score_above_agrees_bitwise_with_score() {
        let recs: [&[u32]; 5] = [
            &[1, 2, 3, 4],
            &[1, 1, 2],
            &[3, 4, 5, 6, 7],
            &[9],
            &[1, 2, 3, 4, 5, 6, 7, 8],
        ];
        for m in SetMeasure::ALL {
            for a in recs {
                for b in recs {
                    let s = m.score(a, b);
                    for t in [-1.0, 0.0, 0.2, s, 0.99, 1.0] {
                        match m.score_above(a, b, t) {
                            Some(got) => {
                                assert!(s > t, "{m:?} a={a:?} b={b:?} t={t}");
                                assert_eq!(got.to_bits(), s.to_bits());
                            }
                            None => assert!(s <= t, "{m:?} a={a:?} b={b:?} t={t}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn bounded_edit_distance_agrees_with_full_dp() {
        let words = ["smith", "smyth", "schmidt", "welson", "wilson", "", "w"];
        for a in words {
            for b in words {
                let d = edit_distance_dp(a, b);
                assert_eq!(edit_distance(a, b), d, "deepening a={a:?} b={b:?}");
                for k in 0..8 {
                    let got = bounded_edit_distance(a, b, k);
                    assert_eq!(got, (d <= k).then_some(d), "a={a:?} b={b:?} k={k}");
                }
            }
        }
    }

    #[test]
    fn word_intersection_count_matches_naive_popcount() {
        // Lengths straddling the 4-word unroll boundary, with patterns
        // that exercise every lane.
        for len in 0..11usize {
            let a: Vec<u64> = (0..len as u64)
                .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | (1 << (i % 64)))
                .collect();
            let b: Vec<u64> = (0..len as u64)
                .map(|i| i.wrapping_mul(0xc2b2_ae3d_27d4_eb4f) | (1 << ((i * 7) % 64)))
                .collect();
            let naive: usize = a
                .iter()
                .zip(&b)
                .map(|(x, y)| (x & y).count_ones() as usize)
                .sum();
            assert_eq!(word_intersection_count(&a, &b), naive, "len={len}");
        }
        assert_eq!(word_intersection_count(&[], &[]), 0);
        assert_eq!(word_intersection_count(&[u64::MAX; 5], &[u64::MAX; 5]), 320);
    }

    #[test]
    fn overlap_multiset_semantics() {
        assert_eq!(multiset_overlap(&[1, 1, 2], &[1, 1, 1]), 2);
        assert_eq!(multiset_overlap(&[1, 2, 3], &[4, 5]), 0);
        assert_eq!(multiset_overlap(&[], &[1]), 0);
        assert_eq!(multiset_overlap(&[1, 2, 3], &[1, 2, 3]), 3);
    }

    #[test]
    fn jaccard_matches_paper_example() {
        // Figure 6: w = [a b c e f], x = [a b c e f...]: s(x, w) = 0.8 for
        // two 4-token strings sharing... reconstructed small case:
        let a = [1, 2, 3, 4];
        let b = [1, 2, 3, 5];
        assert!((SetMeasure::Jaccard.score(&a, &b) - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn measure_values_agree_with_formulas() {
        let a = [1, 2, 3, 4];
        let b = [3, 4, 5];
        let o = multiset_overlap(&a, &b) as f64; // 2
        assert!((SetMeasure::Jaccard.score(&a, &b) - o / 5.0).abs() < 1e-12);
        assert!((SetMeasure::Cosine.score(&a, &b) - o / 12f64.sqrt()).abs() < 1e-12);
        assert!((SetMeasure::Dice.score(&a, &b) - 2.0 * o / 7.0).abs() < 1e-12);
        assert!((SetMeasure::Overlap.score(&a, &b) - o / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sides_score_zero() {
        for m in SetMeasure::ALL {
            assert_eq!(m.score(&[], &[1, 2]), 0.0);
            assert_eq!(m.score(&[1, 2], &[]), 0.0);
        }
    }

    #[test]
    fn prefix_ubound_from_figure_6() {
        // Extending the prefix of a 4-token string to position 2 caps new
        // Jaccard pairs at 3/4 = 0.75 (paper §4.1 walkthrough).
        assert!((SetMeasure::Jaccard.prefix_ubound(4, 2, 1) - 0.75).abs() < 1e-12);
        // First position caps at 1.0.
        assert_eq!(SetMeasure::Jaccard.prefix_ubound(4, 1, 1), 1.0);
        // Last position caps at 1/|w|.
        assert_eq!(SetMeasure::Jaccard.prefix_ubound(4, 4, 1), 0.25);
    }

    #[test]
    fn prefix_ubound_is_admissible() {
        // For every measure and every split point, no pair sharing only
        // tokens at or after position p can beat the bound.
        let a: Vec<u32> = (0..8).collect();
        for m in SetMeasure::ALL {
            for p in 1..=a.len() {
                // Adversarial partner: exactly the suffix starting at p-1.
                let b: Vec<u32> = a[p - 1..].to_vec();
                let bound = m.prefix_ubound(a.len(), p, 1);
                let score = m.score(&a, &b);
                assert!(
                    score <= bound + 1e-12,
                    "{m:?} p={p}: score {score} > bound {bound}"
                );
            }
        }
    }

    #[test]
    fn bounds_decrease_with_position() {
        for m in SetMeasure::ALL {
            let mut prev = f64::INFINITY;
            for p in 1..=10 {
                let u = m.prefix_ubound(10, p, 2);
                assert!(u <= prev + 1e-12);
                prev = u;
            }
        }
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("welson", "wilson"), 1);
        assert_eq!(edit_distance("altanta", "atlanta"), 2);
    }

    #[test]
    fn banded_check_agrees_with_full_dp() {
        let words = ["smith", "smyth", "schmidt", "welson", "wilson", "", "w"];
        for a in words {
            for b in words {
                let d = edit_distance(a, b);
                for k in 0..5 {
                    assert_eq!(
                        within_edit_distance(a, b, k),
                        d <= k,
                        "a={a:?} b={b:?} k={k} d={d}"
                    );
                }
            }
        }
    }

    #[test]
    fn edit_similarity_range() {
        assert_eq!(edit_similarity("", ""), 1.0);
        assert_eq!(edit_similarity("abc", "abc"), 1.0);
        assert_eq!(edit_similarity("abc", "xyz"), 0.0);
        let s = edit_similarity("welson", "wilson");
        assert!((s - (1.0 - 1.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn labels() {
        assert_eq!(SetMeasure::Jaccard.label(), "jac");
        assert_eq!(SetMeasure::Cosine.label(), "cos");
        assert_eq!(SetMeasure::Dice.label(), "dice");
        assert_eq!(SetMeasure::Overlap.label(), "ovl");
    }
}

//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the API surface the workspace uses:
//! [`rngs::StdRng`] (a xoshiro256++ generator), [`SeedableRng`],
//! [`RngExt`] (`random_range`, `random_bool`) and the slice helpers in
//! [`seq`]. Determinism is the only contract callers rely on: the same
//! seed always yields the same stream (though not the same stream as the
//! real `rand` crate).

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed;

    /// Builds a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; perturb it.
            if s == [0, 0, 0, 0] {
                s = [0xDEAD_BEEF, 0xCAFE_F00D, 0x1234_5678, 0x9ABC_DEF0];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value from `rng`. Panics on an empty range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

#[inline]
fn uniform_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    // Multiply-shift uniform mapping (Lemire); bias is < 2^-64 per draw,
    // far below anything the synthetic data generators could observe.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

#[inline]
fn unit_f64<R: RngCore>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64) - (lo as u64) + 1;
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, usize);

impl SampleRange<u64> for Range<u64> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + uniform_u64(rng, self.end - self.start)
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform draw from `range`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Random selection from slices.
pub mod seq {
    use super::{uniform_u64, RngCore};

    /// Uniform choice of one element.
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// A uniformly chosen element, `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        #[inline]
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }

    /// In-place random permutation.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000u32), b.random_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(10..20u32);
            assert!((10..20).contains(&x));
            let y = rng.random_range(1..=4usize);
            assert!((1..=4).contains(&y));
            let f = rng.random_range(2.0..3.0f64);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_is_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = [1, 2, 3];
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
        let mut w: Vec<u32> = (0..50).collect();
        w.shuffle(&mut rng);
        let mut sorted = w.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(w, sorted, "shuffle of 50 elements left them sorted");
    }
}

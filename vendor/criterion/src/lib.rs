//! Offline mini benchmark harness exposing the subset of the criterion
//! API the workspace's benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Each benchmark is timed for a fixed number of samples and the
//! mean/min are printed; there is no statistical analysis, plotting, or
//! baseline storage. Good enough to spot order-of-magnitude regressions
//! by eye and to keep `cargo bench` compiling offline.

use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box`.
pub use std::hint::black_box;

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, once per sample, after one untimed warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.results.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark and prints its timings.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            results: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.results);
        self
    }

    /// Ends the group (printing happens eagerly; this is a no-op).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    default_samples: usize,
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = if self.default_samples == 0 {
            10
        } else {
            self.default_samples
        };
        BenchmarkGroup {
            name: name.into(),
            samples,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: 10,
            results: Vec::new(),
        };
        f(&mut b);
        report(&id.into(), &b.results);
        self
    }
}

fn report(name: &str, results: &[Duration]) {
    if results.is_empty() {
        println!("bench {name:<40} (no samples)");
        return;
    }
    let total: Duration = results.iter().sum();
    let mean = total / results.len() as u32;
    let min = results.iter().min().copied().unwrap_or_default();
    println!(
        "bench {name:<40} mean {:>12.3?}  min {:>12.3?}  samples {}",
        mean,
        min,
        results.len()
    );
}

/// Collects benchmark functions into a runnable group, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! Offline drop-in subset of `parking_lot`, backed by `std::sync`.
//!
//! Provides the non-poisoning `Mutex`/`RwLock` API the workspace uses.
//! Poison errors from the std primitives are swallowed by recovering the
//! inner guard — matching parking_lot's semantics, where a panicking
//! holder does not poison the lock.

use std::sync;

/// A mutual-exclusion lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// RAII guard of a [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

/// Shared-read guard of a [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard of a [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
